//! Machine-readable sharding snapshot: the paper's three operation mixes
//! on the unsharded chromatic tree vs. the range-partitioned façade
//! (`sharded`, chromatic shards) across a thread sweep, recorded as a
//! labeled run in `BENCH_shard.json` (same label-merge behavior as
//! `bench_fig8`, so a baseline and a candidate can live side by side).
//!
//! The façade's boundary table is sized to the benchmark's key range
//! (`NBTREE_SHARD_SPAN` is pinned to the sweep's key range unless the
//! caller already set it), so shards receive equal load — the deployment
//! configuration `docs/SHARDING.md` prescribes.
//!
//! Knobs: `NBTREE_BENCH_SECS`, `NBTREE_BENCH_TRIALS`,
//! `NBTREE_BENCH_THREADS` (default `1,2,4,8`), `NBTREE_BENCH_RANGES`
//! (first entry is the key range; default 10000), `NBTREE_SHARDS`
//! (default 8); `--label NAME`, `--out PATH` (default
//! `BENCH_shard.json`).

use bench::json::Json;
use bench::{bench_threads, first_key_range, pin_shard_span, trial_duration, trials};
use workload::{measure, shard_count, Mix};

fn main() {
    let mut label = String::from("current");
    let mut out_path = String::from("BENCH_shard.json");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--label" => label = args.next().expect("--label needs a value"),
            "--out" => out_path = args.next().expect("--out needs a value"),
            other => {
                eprintln!("unknown argument `{other}`");
                eprintln!("usage: bench_shard [--label NAME] [--out PATH]");
                std::process::exit(2);
            }
        }
    }

    let duration = trial_duration();
    let n_trials = trials();
    let threads = bench_threads(&[1, 2, 4, 8]);
    let range = first_key_range();
    // Size the boundary table to the key range actually swept (unless the
    // caller pinned a span explicitly) — the comparison must not measure
    // a misconfigured routing table.
    pin_shard_span(range);
    let shards = shard_count();

    eprintln!(
        "# bench_shard: label={label} range={range} shards={shards} \
         threads={threads:?} {n_trials} trial(s) x {duration:?}"
    );

    let mut results = Vec::new();
    for structure in ["chromatic", "sharded"] {
        for mix in Mix::ALL {
            let mix_label = mix.label();
            for &t in &threads {
                let (mops, _) = measure(structure, t, mix, range, duration, n_trials, 42);
                eprintln!("  {structure} {mix_label} threads={t}: {mops:.3} Mops/s");
                results.push(Json::obj(vec![
                    ("structure", Json::Str(structure.to_string())),
                    ("mix", Json::Str(mix_label.to_string())),
                    ("threads", Json::Num(t as f64)),
                    ("mops", Json::Num(mops)),
                ]));
            }
        }
    }

    // Per-cell chromatic→sharded speedups, for humans reading the log.
    for mix in Mix::ALL {
        let mix_label = mix.label();
        for &t in &threads {
            let mops_of = |structure: &str| {
                results
                    .iter()
                    .find(|r| {
                        r.get("structure").and_then(Json::as_str) == Some(structure)
                            && r.get("mix").and_then(Json::as_str) == Some(mix_label.as_str())
                            && r.get("threads").and_then(Json::as_f64) == Some(t as f64)
                    })
                    .and_then(|r| r.get("mops").and_then(Json::as_f64))
                    .unwrap_or(f64::NAN)
            };
            let (un, sh) = (mops_of("chromatic"), mops_of("sharded"));
            eprintln!(
                "  speedup {mix_label} threads={t}: sharded/chromatic = {:.2}x",
                sh / un
            );
        }
    }

    let run = Json::obj(vec![
        ("label", Json::Str(label.clone())),
        ("range", Json::Num(range as f64)),
        ("shards", Json::Num(shards as f64)),
        ("duration_secs", Json::Num(duration.as_secs_f64())),
        ("trials", Json::Num(n_trials as f64)),
        ("results", Json::Arr(results)),
    ]);

    let existing = std::fs::read_to_string(&out_path).ok();
    let doc = bench::json::merge_labeled_run(existing.as_deref(), "bench_shard/v1", &label, run);
    std::fs::write(&out_path, doc.pretty()).expect("write BENCH_shard.json");
    eprintln!("wrote {out_path}");
}
