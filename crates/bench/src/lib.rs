//! Shared configuration and table printing for the figure-regeneration
//! binaries (`figure8`, `figure9`, `height_bound`, `ablation_violations`,
//! `rebalance_cost`), the machine-readable artifact bins (`bench_fig8`,
//! `bench_range`, `bench_shard`, `bench_gate`) and the docs-gate bins
//! (`linkcheck`, `readme_table`, `cfgcheck`).
//!
//! The knobs parsed here are the *bench* family (`NBTREE_BENCH_*`:
//! durations, trials, thread sweeps, key ranges). Suite-construction
//! knobs (`NBTREE_SHARDS`, `NBTREE_SHARD_SPAN`) are parsed exactly once
//! per process by `workload::SuiteConfig::from_env` and threaded through
//! `make_map`/`measure` as a value — no binary mutates the environment,
//! and the `cfgcheck` gate keeps it that way.

pub mod cfggate;
pub mod gate;
pub mod json;
pub mod links;
pub mod readme;

use std::time::Duration;

/// Per-trial duration: `NBTREE_BENCH_SECS` (seconds, float), default 0.5s;
/// the paper used 5s — set `NBTREE_BENCH_FULL=1` for paper-scale runs.
pub fn trial_duration() -> Duration {
    if full_scale() {
        return Duration::from_secs(5);
    }
    let secs: f64 = std::env::var("NBTREE_BENCH_SECS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.5);
    Duration::from_secs_f64(secs)
}

/// Trials per configuration: `NBTREE_BENCH_TRIALS`, default 1 (paper: 5).
pub fn trials() -> usize {
    if full_scale() {
        return 5;
    }
    std::env::var("NBTREE_BENCH_TRIALS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1)
}

/// `NBTREE_BENCH_FULL=1` switches to the paper's 5s × 5-trial methodology.
pub fn full_scale() -> bool {
    std::env::var("NBTREE_BENCH_FULL")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// The paper's key ranges: 1e2 (high contention), 1e4 (moderate), 1e6 (low).
/// Override with `NBTREE_BENCH_RANGES=100,10000` for quicker runs.
pub fn key_ranges() -> Vec<u64> {
    if let Ok(s) = std::env::var("NBTREE_BENCH_RANGES") {
        return s.split(',').filter_map(|x| x.trim().parse().ok()).collect();
    }
    vec![100, 10_000, 1_000_000]
}

/// The single key range used by the artifact bins (`bench_fig8`,
/// `bench_range`, `bench_shard`): the first entry of
/// `NBTREE_BENCH_RANGES`, default 10 000.
pub fn first_key_range() -> u64 {
    std::env::var("NBTREE_BENCH_RANGES")
        .ok()
        .and_then(|s| s.split(',').next()?.trim().parse().ok())
        .unwrap_or(10_000)
}

/// Width of range scans in the range workloads: `NBTREE_BENCH_RANGE_WIDTH`
/// (keys per scan), default 100. A scan starting at `k` covers
/// `[k, k + width)`; one scan counts as one operation in Mops/s.
pub fn range_width() -> u64 {
    std::env::var("NBTREE_BENCH_RANGE_WIDTH")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&w| w > 0)
        .unwrap_or(100)
}

/// Thread counts to sweep: `NBTREE_BENCH_THREADS=1,2` overrides the
/// host-derived default (used by the CI bench-smoke job to stay tiny).
pub fn bench_threads(default: &[usize]) -> Vec<usize> {
    if let Ok(s) = std::env::var("NBTREE_BENCH_THREADS") {
        let v: Vec<usize> = s.split(',').filter_map(|x| x.trim().parse().ok()).collect();
        if !v.is_empty() {
            return v;
        }
    }
    default.to_vec()
}

/// Parallelism of the host as reported by the OS (1 when unknown) — the
/// provenance every artifact row carries so a reader (human or gate) can
/// tell which cells were measured with real parallelism.
pub fn host_cores() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// The host-provenance fields appended to every artifact result row:
/// the measuring host's core count and whether the cell ran more worker
/// threads than cores. An oversubscribed cell's Mops/s is
/// scheduler-dominated — comparable across labels only on the same host
/// and kernel — so the bench gate skips those cells instead of gating on
/// them.
pub fn provenance(threads: usize) -> Vec<(&'static str, json::Json)> {
    let cores = host_cores();
    vec![
        ("cores", json::Json::Num(cores as f64)),
        ("oversubscribed", json::Json::Bool(threads > cores)),
    ]
}

/// The latency-percentile fields appended to every artifact result row:
/// `p50_ns`/`p99_ns`/`p999_ns` of the run's trials merged (all op kinds
/// folded — a row is one mix, so the blend is the workload's own). The
/// fields are optional in the schema: rows from older artifacts simply
/// don't have them, and the gate treats them as absent.
pub fn latency_fields(trials: &[workload::TrialResult]) -> Vec<(&'static str, json::Json)> {
    let s = workload::latency_summary(trials);
    vec![
        ("p50_ns", json::Json::Num(s.p50_ns as f64)),
        ("p99_ns", json::Json::Num(s.p99_ns as f64)),
        ("p999_ns", json::Json::Num(s.p999_ns as f64)),
    ]
}

/// Human-readable nanoseconds (`850ns`, `3.4µs`, `1.2ms`) for tables.
pub fn fmt_ns(ns: u64) -> String {
    match ns {
        0..=999 => format!("{ns}ns"),
        1_000..=999_999 => format!("{:.1}µs", ns as f64 / 1e3),
        1_000_000..=999_999_999 => format!("{:.1}ms", ns as f64 / 1e6),
        _ => format!("{:.2}s", ns as f64 / 1e9),
    }
}

/// Prints one row of a fixed-width table.
pub fn print_row(first: &str, cells: &[String]) {
    print!("{first:<12}");
    for c in cells {
        print!(" {c:>10}");
    }
    println!();
}
