//! A minimal JSON value, writer and parser for the machine-readable bench
//! artifacts (`BENCH_fig8.json`). Serde is not available offline; the bench
//! schema is small enough that a ~150-line recursive-descent parser is the
//! simplest dependency-free option, and having a real parser lets
//! `bench_fig8` merge labeled runs into an existing file instead of
//! clobbering the baseline.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON document node. Object keys are kept sorted (`BTreeMap`) so the
/// serialized artifact is deterministic across runs.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (serialized via `f64`).
    Num(f64),
    /// A string (no escape support beyond the writer's own output needs).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with sorted keys.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Convenience constructor for an object.
    pub fn obj(entries: Vec<(&str, Json)>) -> Json {
        Json::Obj(
            entries
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Member lookup on objects; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The elements of an array; empty for other variants.
    pub fn items(&self) -> &[Json] {
        match self {
            Json::Arr(v) => v,
            _ => &[],
        }
    }

    /// String payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Serializes with two-space indentation and a trailing newline.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent);
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Num(n) => {
                // Integers print without a fraction so thread counts and
                // ranges round-trip exactly.
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        c if (c as u32) < 0x20 => {
                            let _ = write!(out, "\\u{:04x}", c as u32);
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    let _ = write!(out, "{pad}  ");
                    item.write(out, indent + 1);
                    out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
                }
                let _ = write!(out, "{pad}]");
            }
            Json::Obj(map) => {
                if map.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in map.iter().enumerate() {
                    let _ = write!(out, "{pad}  \"{k}\": ");
                    v.write(out, indent + 1);
                    out.push_str(if i + 1 < map.len() { ",\n" } else { "\n" });
                }
                let _ = write!(out, "{pad}}}");
            }
        }
    }

    /// Parses a JSON document. Supports the full value grammar with the
    /// common string escapes; returns a descriptive error on malformed input.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(v)
    }
}

/// Label-merge for bench artifacts: parses `existing` (the previous
/// artifact text, if any), keeps every run whose `label` differs, replaces
/// or appends `run` under `label`, and wraps everything in the artifact
/// envelope (`schema`, `host_threads`, `runs`). Malformed existing text is
/// discarded with a warning on stderr — a half-written artifact from a
/// crashed run must not abort the new one.
pub fn merge_labeled_run(existing: Option<&str>, schema: &str, label: &str, run: Json) -> Json {
    let mut runs: Vec<Json> = match existing {
        Some(text) => match Json::parse(text) {
            Ok(doc) => doc
                .get("runs")
                .map(|r| r.items().to_vec())
                .unwrap_or_default(),
            Err(e) => {
                eprintln!("warning: could not parse existing artifact ({e}); overwriting");
                Vec::new()
            }
        },
        None => Vec::new(),
    };
    runs.retain(|r| r.get("label").and_then(Json::as_str) != Some(label));
    runs.push(run);
    Json::obj(vec![
        ("schema", Json::Str(schema.into())),
        (
            "host_threads",
            Json::Num(
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1) as f64,
            ),
        ),
        ("runs", Json::Arr(runs)),
    ])
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("expected `{lit}` at byte {pos}", pos = *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => expect(b, pos, "null").map(|()| Json::Null),
        Some(b't') => expect(b, pos, "true").map(|()| Json::Bool(true)),
        Some(b'f') => expect(b, pos, "false").map(|()| Json::Bool(false)),
        Some(b'"') => parse_string(b, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut map = BTreeMap::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, ":")?;
                map.insert(key, parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(map));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(_) => parse_number(b, pos),
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, "\"")?;
    let mut s = String::new();
    while let Some(&c) = b.get(*pos) {
        *pos += 1;
        match c {
            b'"' => return Ok(s),
            b'\\' => {
                let esc = *b.get(*pos).ok_or("unterminated escape")?;
                *pos += 1;
                match esc {
                    b'"' => s.push('"'),
                    b'\\' => s.push('\\'),
                    b'/' => s.push('/'),
                    b'n' => s.push('\n'),
                    b't' => s.push('\t'),
                    b'r' => s.push('\r'),
                    b'u' => {
                        let end = pos.checked_add(4).filter(|&e| e <= b.len());
                        let hex = end
                            .and_then(|e| std::str::from_utf8(&b[*pos..e]).ok())
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                        *pos += 4;
                        s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    _ => return Err(format!("unknown escape \\{}", esc as char)),
                }
            }
            c => {
                // Re-assemble multi-byte UTF-8 sequences byte-by-byte.
                let start = *pos - 1;
                let len = utf8_len(c);
                if start + len > b.len() {
                    return Err("truncated UTF-8 sequence".into());
                }
                let chunk =
                    std::str::from_utf8(&b[start..start + len]).map_err(|_| "invalid UTF-8")?;
                s.push_str(chunk);
                *pos = start + len;
            }
        }
    }
    Err("unterminated string".into())
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Json::Num)
        .ok_or_else(|| format!("invalid number at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_bench_schema() {
        let doc = Json::obj(vec![
            ("schema", Json::Str("bench_fig8/v1".into())),
            (
                "runs",
                Json::Arr(vec![Json::obj(vec![
                    ("label", Json::Str("baseline".into())),
                    ("mops", Json::Num(1.25)),
                    ("threads", Json::Num(4.0)),
                ])]),
            ),
        ]);
        let text = doc.pretty();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back, doc);
        assert_eq!(
            back.get("runs").unwrap().items()[0]
                .get("label")
                .unwrap()
                .as_str(),
            Some("baseline")
        );
    }

    #[test]
    fn parses_escapes_and_nested() {
        let v = Json::parse(r#"{"a": [1, 2.5, "x\ny", true, null], "b": {}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().items()[2].as_str(), Some("x\ny"));
        assert_eq!(v.get("b"), Some(&Json::Obj(BTreeMap::new())));
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{\"a\": }").is_err());
        assert!(Json::parse("[1, 2,]").is_err());
        assert!(Json::parse("{} trailing").is_err());
    }

    #[test]
    fn merge_replaces_matching_label_and_keeps_others() {
        let run = |label: &str, mops: f64| {
            Json::obj(vec![
                ("label", Json::Str(label.into())),
                ("mops", Json::Num(mops)),
            ])
        };
        // Fresh artifact.
        let doc = merge_labeled_run(None, "bench_x/v1", "baseline", run("baseline", 1.0));
        assert_eq!(doc.get("schema").unwrap().as_str(), Some("bench_x/v1"));
        assert_eq!(doc.get("runs").unwrap().items().len(), 1);
        // Merge a second label.
        let text = doc.pretty();
        let doc = merge_labeled_run(Some(&text), "bench_x/v1", "pr", run("pr", 2.0));
        assert_eq!(doc.get("runs").unwrap().items().len(), 2);
        // Re-running a label replaces, not duplicates.
        let text = doc.pretty();
        let doc = merge_labeled_run(Some(&text), "bench_x/v1", "pr", run("pr", 3.0));
        let runs = doc.get("runs").unwrap().items();
        assert_eq!(runs.len(), 2);
        let pr = runs
            .iter()
            .find(|r| r.get("label").and_then(Json::as_str) == Some("pr"))
            .unwrap();
        assert_eq!(pr.get("mops").unwrap().as_f64(), Some(3.0));
        // Garbage input is discarded, not fatal.
        let doc = merge_labeled_run(Some("{broken"), "bench_x/v1", "a", run("a", 1.0));
        assert_eq!(doc.get("runs").unwrap().items().len(), 1);
    }

    #[test]
    fn truncated_input_errors_instead_of_panicking() {
        // A half-written artifact (crash mid-run) must hit the recovery
        // path in bench_fig8, not abort it.
        assert!(Json::parse("\"\\u12").is_err());
        assert!(Json::parse("\"abc").is_err());
        let cut_multibyte = &"\"é\"".as_bytes()[..2];
        assert!(Json::parse(std::str::from_utf8(cut_multibyte).unwrap_or("\"")).is_err());
    }
}
