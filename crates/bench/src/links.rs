//! Markdown link extraction and intra-repo resolution for the `linkcheck`
//! binary (the docs CI gate). Grep-grade on purpose: no network, no
//! markdown AST — scan for `](target)` inline links and `[label]: target`
//! reference definitions, skip external schemes, and check that relative
//! targets exist on disk.

use std::path::{Component, Path, PathBuf};

/// One link occurrence in a markdown file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Link {
    /// Link target as written (before stripping `#fragment`).
    pub target: String,
    /// 1-based line number of the occurrence.
    pub line: usize,
}

/// Extracts link targets from markdown text: inline `[text](target)`
/// links and images, plus `[label]: target` reference definitions.
/// Fenced code blocks are skipped (they hold example syntax, not links).
pub fn extract_links(text: &str) -> Vec<Link> {
    let mut out = Vec::new();
    let mut in_fence = false;
    for (idx, line) in text.lines().enumerate() {
        let trimmed = line.trim_start();
        if trimmed.starts_with("```") || trimmed.starts_with("~~~") {
            in_fence = !in_fence;
            continue;
        }
        if in_fence {
            continue;
        }
        // Inline links: every `](...)` occurrence. Inline code spans are
        // not special-cased; a false positive there fails loudly in CI
        // and gets the doc fixed, which is the cheap kind of error.
        let bytes = line.as_bytes();
        let mut i = 0;
        while i + 1 < bytes.len() {
            if bytes[i] == b']' && bytes[i + 1] == b'(' {
                if let Some(close) = line[i + 2..].find(')') {
                    let target = line[i + 2..i + 2 + close].trim();
                    // `[x](url "title")` — drop the title part.
                    let target = target.split_whitespace().next().unwrap_or("");
                    if !target.is_empty() {
                        out.push(Link {
                            target: target.to_string(),
                            line: idx + 1,
                        });
                    }
                    i += 2 + close;
                    continue;
                }
            }
            i += 1;
        }
        // Reference definitions: `[label]: target` at line start.
        if let Some(rest) = trimmed.strip_prefix('[') {
            if let Some(end) = rest.find("]:") {
                let target = rest[end + 2..].split_whitespace().next();
                if let Some(target) = target.filter(|t| !t.is_empty()) {
                    out.push(Link {
                        target: target.to_string(),
                        line: idx + 1,
                    });
                }
            }
        }
    }
    out
}

/// Whether a target points outside the repo (external scheme or
/// pure-fragment/in-page anchor) and is therefore not checked.
pub fn is_external(target: &str) -> bool {
    target.starts_with('#')
        || target.contains("://")
        || target.starts_with("mailto:")
        || target.starts_with("data:")
}

/// Resolves `target` (as written in a file at `from`) to a repo path and
/// checks existence. Returns `None` when the link is fine (external,
/// anchor-only, or resolves to an existing file/dir), `Some(resolved)`
/// with the path that does not exist otherwise.
pub fn broken_target(repo_root: &Path, from: &Path, target: &str) -> Option<PathBuf> {
    if is_external(target) {
        return None;
    }
    // Strip `#fragment`; heading anchors are not verified (grep-grade).
    let path_part = target.split('#').next().unwrap_or("");
    if path_part.is_empty() {
        return None;
    }
    let base = if let Some(abs) = path_part.strip_prefix('/') {
        // Root-relative: resolve against the repo root.
        repo_root.join(abs)
    } else {
        from.parent().unwrap_or(repo_root).join(path_part)
    };
    // Normalize `..` components without touching the filesystem, so the
    // reported path is readable and escape attempts don't panic.
    let mut normalized = PathBuf::new();
    for comp in base.components() {
        match comp {
            Component::ParentDir => {
                normalized.pop();
            }
            Component::CurDir => {}
            other => normalized.push(other),
        }
    }
    if normalized.exists() {
        None
    } else {
        Some(normalized)
    }
}

/// Collects every `*.md` under `root`, skipping `target/`, `vendor/`,
/// `.git/` and hidden directories (vendored crates' docs are not ours to
/// gate).
pub fn markdown_files(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&dir) else {
            continue;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if name.starts_with('.') || name == "target" || name == "vendor" {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".md") {
                out.push(path);
            }
        }
    }
    out.sort();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extracts_inline_and_reference_links() {
        let md = "\
See [arch](docs/ARCHITECTURE.md) and [perf](docs/PERFORMANCE.md#knobs).
![fig](assets/fig8.png)
Two on one line: [a](x.md) then [b](y.md \"titled\").
[ref]: ../up.md
```
[not a link](skipped/in/fence.md)
```
External [site](https://example.com) and [anchor](#local).";
        let links = extract_links(md);
        let targets: Vec<&str> = links.iter().map(|l| l.target.as_str()).collect();
        assert_eq!(
            targets,
            vec![
                "docs/ARCHITECTURE.md",
                "docs/PERFORMANCE.md#knobs",
                "assets/fig8.png",
                "x.md",
                "y.md",
                "../up.md",
                "https://example.com",
                "#local",
            ]
        );
        assert_eq!(links[0].line, 1);
        assert_eq!(links[5].line, 4);
    }

    #[test]
    fn externals_and_anchors_are_skipped() {
        assert!(is_external("https://a.b/c"));
        assert!(is_external("http://a"));
        assert!(is_external("mailto:x@y.z"));
        assert!(is_external("#section"));
        assert!(!is_external("docs/X.md"));
        assert!(!is_external("../X.md"));
    }

    #[test]
    fn resolves_relative_to_file_and_reports_broken() {
        let tmp = std::env::temp_dir().join(format!("linkcheck-test-{}", std::process::id()));
        std::fs::create_dir_all(tmp.join("docs")).unwrap();
        std::fs::write(tmp.join("README.md"), "x").unwrap();
        std::fs::write(tmp.join("docs/A.md"), "x").unwrap();

        let from = tmp.join("docs/A.md");
        // Sibling, with fragment.
        assert_eq!(broken_target(&tmp, &from, "A.md#frag"), None);
        // Up-and-over.
        assert_eq!(broken_target(&tmp, &from, "../README.md"), None);
        // Root-relative.
        assert_eq!(broken_target(&tmp, &from, "/README.md"), None);
        // Broken.
        let missing = broken_target(&tmp, &from, "missing.md");
        assert_eq!(missing, Some(tmp.join("docs/missing.md")));
        // Fragment-only and external are never broken.
        assert_eq!(broken_target(&tmp, &from, "#x"), None);
        assert_eq!(broken_target(&tmp, &from, "https://x"), None);

        std::fs::remove_dir_all(&tmp).unwrap();
    }

    #[test]
    fn walk_skips_vendor_and_target() {
        let tmp = std::env::temp_dir().join(format!("linkwalk-test-{}", std::process::id()));
        for d in ["docs", "vendor/x", "target/doc", ".git"] {
            std::fs::create_dir_all(tmp.join(d)).unwrap();
        }
        std::fs::write(tmp.join("README.md"), "x").unwrap();
        std::fs::write(tmp.join("docs/A.md"), "x").unwrap();
        std::fs::write(tmp.join("vendor/x/README.md"), "x").unwrap();
        std::fs::write(tmp.join("target/doc/B.md"), "x").unwrap();
        std::fs::write(tmp.join(".git/C.md"), "x").unwrap();

        let files = markdown_files(&tmp);
        let names: Vec<String> = files
            .iter()
            .map(|p| p.strip_prefix(&tmp).unwrap().to_string_lossy().into_owned())
            .collect();
        assert_eq!(
            names,
            vec!["README.md".to_string(), "docs/A.md".to_string()]
        );

        std::fs::remove_dir_all(&tmp).unwrap();
    }
}
