//! The CI bench gate: compares two labeled runs of a bench artifact
//! (`BENCH_fig8.json` schema) and flags throughput regressions — and,
//! when both runs carry latency percentiles, p99 tail regressions.
//!
//! The gate is deliberately coarse — CI machines are noisy, so the default
//! tolerance is a large 30% and the comparison is per *(structure, mix,
//! threads)* point rather than aggregate, which catches a mix-specific
//! cliff (e.g. a range-scan change tanking only `0i-0d`) that an average
//! would smear out. The tail comparison is coarser still: percentiles
//! come from power-of-two histogram buckets, so a single-bucket shift is
//! already a 2× step — the default p99 tolerance (1.0, i.e. "may double")
//! flags only a jump past one whole bucket.

use crate::json::Json;

/// One compared throughput point.
#[derive(Debug, Clone)]
pub struct GatePoint {
    /// `structure/mix@threads` identifier for messages.
    pub key: String,
    /// Baseline throughput (Mops/s).
    pub base: f64,
    /// Candidate throughput (Mops/s).
    pub cand: f64,
    /// `cand / base - 1`, negative for slowdowns.
    pub delta: f64,
    /// Whether the slowdown exceeds the tolerance.
    pub regressed: bool,
    /// Baseline `(p50, p99, p999)` in ns, when the row carries them.
    pub base_lat: Option<(f64, f64, f64)>,
    /// Candidate `(p50, p99, p999)` in ns, when the row carries them.
    pub cand_lat: Option<(f64, f64, f64)>,
    /// Whether the candidate p99 exceeds the baseline p99 beyond the
    /// tail tolerance (always `false` when tail gating is off or either
    /// side lacks percentiles — old artifacts never fail the tail gate).
    pub tail_regressed: bool,
}

/// Result of a gate comparison.
#[derive(Debug, Default)]
pub struct GateReport {
    /// Every point present in both runs.
    pub points: Vec<GatePoint>,
    /// Baseline points with no candidate counterpart. A dropped point is
    /// a gate failure: a candidate sweep that lost a (structure, mix,
    /// threads) cell — a panic mid-sweep, a changed default — must not
    /// pass just because the surviving cells look fine.
    pub missing: Vec<String>,
    /// Points excluded because either side ran oversubscribed (row field
    /// `"oversubscribed": true`, written by the artifact bins when a cell
    /// used more worker threads than host cores). Such cells measure the
    /// scheduler, not the structure, so they neither pass, fail, nor
    /// count as missing.
    pub skipped: Vec<String>,
}

impl GateReport {
    /// The points that regressed beyond tolerance (throughput or tail).
    pub fn regressions(&self) -> Vec<&GatePoint> {
        self.points
            .iter()
            .filter(|p| p.regressed || p.tail_regressed)
            .collect()
    }

    /// Whether the gate passes: no regressed point (mean or tail) and no
    /// baseline point missing from the candidate.
    pub fn passed(&self) -> bool {
        self.regressions().is_empty() && self.missing.is_empty()
    }

    /// Whether *every* candidate cell was skipped as oversubscribed —
    /// i.e. the gate compared nothing at all. `passed()` is vacuously
    /// true then, so callers (the `bench_gate` bin) must check this and
    /// fail distinctly: a starved host must not green-light a PR.
    pub fn all_skipped(&self) -> bool {
        self.points.is_empty() && !self.skipped.is_empty()
    }

    /// Renders the comparison as a GitHub-flavored markdown table (the
    /// CI step summary): per cell, mean throughput on both sides and the
    /// candidate's latency percentiles, with the baseline p99 alongside
    /// so tail movement is visible at a glance.
    pub fn render_summary(&self, baseline: &str, candidate: &str) -> String {
        use std::fmt::Write as _;
        let fmt_lat = |lat: Option<(f64, f64, f64)>| match lat {
            Some((p50, p99, p999)) => format!(
                "{} / {} / {}",
                crate::fmt_ns(p50 as u64),
                crate::fmt_ns(p99 as u64),
                crate::fmt_ns(p999 as u64)
            ),
            None => "—".into(),
        };
        let mut s = String::new();
        let _ = writeln!(s, "### Bench gate: `{baseline}` → `{candidate}`\n");
        let _ = writeln!(
            s,
            "| point | base Mops | cand Mops | Δ | base p50/p99/p999 | cand p50/p99/p999 | status |"
        );
        let _ = writeln!(s, "|---|---:|---:|---:|---:|---:|---|");
        for p in &self.points {
            let status = match (p.regressed, p.tail_regressed) {
                (false, false) => "ok",
                (true, false) => "**regressed**",
                (false, true) => "**tail regressed**",
                (true, true) => "**regressed (mean+tail)**",
            };
            let _ = writeln!(
                s,
                "| {} | {:.3} | {:.3} | {:+.1}% | {} | {} | {} |",
                p.key,
                p.base,
                p.cand,
                p.delta * 100.0,
                fmt_lat(p.base_lat),
                fmt_lat(p.cand_lat),
                status
            );
        }
        for k in &self.skipped {
            let _ = writeln!(s, "| {k} | — | — | — | — | — | skipped (oversubscribed) |");
        }
        for k in &self.missing {
            let _ = writeln!(s, "| {k} | — | — | — | — | — | **missing** |");
        }
        s
    }
}

fn find_run<'a>(doc: &'a Json, label: &str) -> Option<&'a Json> {
    doc.get("runs")?
        .items()
        .iter()
        .find(|r| r.get("label").and_then(Json::as_str) == Some(label))
}

/// Everything the gate reads out of one artifact result row.
#[derive(Debug, Clone)]
struct RowInfo {
    key: String,
    mops: f64,
    over: bool,
    lat: Option<(f64, f64, f64)>,
}

fn row_info(run: &Json, result: &Json) -> Option<RowInfo> {
    let mix = result.get("mix")?.as_str()?;
    let threads = result.get("threads")?.as_f64()?;
    // The structure lives per-run in bench_fig8 and per-result in
    // bench_range (which can sweep several structures in one run).
    let structure = result
        .get("structure")
        .or_else(|| run.get("structure"))
        .and_then(Json::as_str)
        .unwrap_or("?");
    let mops = result.get("mops")?.as_f64()?;
    // Absent field means "not oversubscribed": older artifacts carry no
    // provenance.
    let over = result
        .get("oversubscribed")
        .and_then(Json::as_bool)
        .unwrap_or(false);
    // Latency percentiles are optional (older artifacts): all-or-nothing.
    let lat = (|| {
        Some((
            result.get("p50_ns")?.as_f64()?,
            result.get("p99_ns")?.as_f64()?,
            result.get("p999_ns")?.as_f64()?,
        ))
    })();
    Some(RowInfo {
        key: format!("{structure}/{mix}@{threads}"),
        mops,
        over,
        lat,
    })
}

/// Compares the runs labeled `baseline` and `candidate` in `doc`. A point
/// regresses when `cand < base * (1 - tolerance)`; with
/// `p99_tolerance = Some(t)` a point also regresses when both sides carry
/// percentiles and `cand_p99 > base_p99 * (1 + t)`. Points below
/// `min_mops` in the baseline are compared but never flagged (too noisy to
/// gate on — the same floor guards the tail check); points oversubscribed
/// on either side are skipped outright (see [`GateReport::skipped`]).
/// Errors when either label is missing or no points overlap.
pub fn compare(
    doc: &Json,
    baseline: &str,
    candidate: &str,
    tolerance: f64,
    min_mops: f64,
    p99_tolerance: Option<f64>,
) -> Result<GateReport, String> {
    let base_run = find_run(doc, baseline).ok_or_else(|| format!("no run labeled `{baseline}`"))?;
    let cand_run =
        find_run(doc, candidate).ok_or_else(|| format!("no run labeled `{candidate}`"))?;
    let base_rows: Vec<RowInfo> = base_run
        .get("results")
        .map(|r| r.items())
        .unwrap_or_default()
        .iter()
        .filter_map(|res| row_info(base_run, res))
        .collect();
    let mut report = GateReport::default();
    for cand_res in cand_run
        .get("results")
        .map(|r| r.items())
        .unwrap_or_default()
    {
        let Some(cand) = row_info(cand_run, cand_res) else {
            continue;
        };
        let Some(base) = base_rows.iter().find(|b| b.key == cand.key) else {
            continue;
        };
        if base.over || cand.over {
            report.skipped.push(cand.key);
            continue;
        }
        let delta = if base.mops > 0.0 {
            cand.mops / base.mops - 1.0
        } else {
            0.0
        };
        let gated = base.mops >= min_mops;
        let regressed = gated && cand.mops < base.mops * (1.0 - tolerance);
        let tail_regressed = match (p99_tolerance, base.lat, cand.lat) {
            (Some(t), Some((_, bp99, _)), Some((_, cp99, _))) => gated && cp99 > bp99 * (1.0 + t),
            _ => false,
        };
        report.points.push(GatePoint {
            key: cand.key,
            base: base.mops,
            cand: cand.mops,
            delta,
            regressed,
            base_lat: base.lat,
            cand_lat: cand.lat,
            tail_regressed,
        });
    }
    if report.points.is_empty() && report.skipped.is_empty() {
        return Err(format!(
            "runs `{baseline}` and `{candidate}` share no comparable points"
        ));
    }
    report.missing = base_rows
        .iter()
        .filter(|b| {
            !report.points.iter().any(|p| p.key == b.key) && !report.skipped.contains(&b.key)
        })
        .map(|b| b.key.clone())
        .collect();
    // Deterministic display order, `@threads` compared numerically:
    // JSON result order would interleave merged runs, and a plain string
    // sort puts `@16` before `@2`.
    report.points.sort_by_key(|p| key_order(&p.key));
    report.skipped.sort_by_key(|k| key_order(k));
    report.missing.sort_by_key(|k| key_order(k));
    Ok(report)
}

/// Sort key for a `structure/mix@threads` point key: (structure, mix,
/// numeric threads). Unparseable keys sort by their text with threads 0,
/// so they group stably at the front of their name.
fn key_order(key: &str) -> (String, String, u64) {
    let (name, threads) = match key.rsplit_once('@') {
        Some((name, t)) => (name, t.parse().unwrap_or(0)),
        None => (key, 0),
    };
    let (structure, mix) = name.split_once('/').unwrap_or((name, ""));
    (structure.to_string(), mix.to_string(), threads)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(base: &[(&str, f64)], cand: &[(&str, f64)]) -> Json {
        let results = |points: &[(&str, f64)]| {
            Json::Arr(
                points
                    .iter()
                    .map(|(mix, mops)| {
                        Json::obj(vec![
                            ("mix", Json::Str(mix.to_string())),
                            ("threads", Json::Num(2.0)),
                            ("mops", Json::Num(*mops)),
                        ])
                    })
                    .collect(),
            )
        };
        Json::obj(vec![
            ("schema", Json::Str("bench_fig8/v1".into())),
            (
                "runs",
                Json::Arr(vec![
                    Json::obj(vec![
                        ("label", Json::Str("baseline".into())),
                        ("structure", Json::Str("chromatic".into())),
                        ("results", results(base)),
                    ]),
                    Json::obj(vec![
                        ("label", Json::Str("pr".into())),
                        ("structure", Json::Str("chromatic".into())),
                        ("results", results(cand)),
                    ]),
                ]),
            ),
        ])
    }

    /// A doc whose rows also carry latency percentiles.
    fn doc_with_lat(base: &[(&str, f64, f64)], cand: &[(&str, f64, f64)]) -> Json {
        let results = |points: &[(&str, f64, f64)]| {
            Json::Arr(
                points
                    .iter()
                    .map(|(mix, mops, p99)| {
                        Json::obj(vec![
                            ("mix", Json::Str(mix.to_string())),
                            ("threads", Json::Num(2.0)),
                            ("mops", Json::Num(*mops)),
                            ("p50_ns", Json::Num(p99 / 4.0)),
                            ("p99_ns", Json::Num(*p99)),
                            ("p999_ns", Json::Num(p99 * 4.0)),
                        ])
                    })
                    .collect(),
            )
        };
        Json::obj(vec![(
            "runs",
            Json::Arr(vec![
                Json::obj(vec![
                    ("label", Json::Str("baseline".into())),
                    ("structure", Json::Str("chromatic".into())),
                    ("results", results(base)),
                ]),
                Json::obj(vec![
                    ("label", Json::Str("pr".into())),
                    ("structure", Json::Str("chromatic".into())),
                    ("results", results(cand)),
                ]),
            ]),
        )])
    }

    /// A doc whose result rows carry their own structure and thread
    /// count (the bench_range shape), for exercising report ordering.
    fn doc_multi(rows: &[(&str, &str, f64)]) -> Json {
        let results = Json::Arr(
            rows.iter()
                .map(|(structure, mix, threads)| {
                    Json::obj(vec![
                        ("structure", Json::Str(structure.to_string())),
                        ("mix", Json::Str(mix.to_string())),
                        ("threads", Json::Num(*threads)),
                        ("mops", Json::Num(1.0)),
                    ])
                })
                .collect(),
        );
        Json::obj(vec![(
            "runs",
            Json::Arr(vec![
                Json::obj(vec![
                    ("label", Json::Str("baseline".into())),
                    ("results", results.clone()),
                ]),
                Json::obj(vec![
                    ("label", Json::Str("pr".into())),
                    ("results", results),
                ]),
            ]),
        )])
    }

    #[test]
    fn report_points_sort_by_structure_mix_then_numeric_threads() {
        // Jumbled input order, including the lexicographic trap: as
        // strings, "@16" sorts before "@2".
        let d = doc_multi(&[
            ("zebra", "50i-50d", 2.0),
            ("ant", "0i-0d", 16.0),
            ("ant", "50i-50d", 4.0),
            ("ant", "0i-0d", 2.0),
        ]);
        let r = compare(&d, "baseline", "pr", 0.30, 0.0, None).unwrap();
        let keys: Vec<&str> = r.points.iter().map(|p| p.key.as_str()).collect();
        assert_eq!(
            keys,
            vec![
                "ant/0i-0d@2",
                "ant/0i-0d@16",
                "ant/50i-50d@4",
                "zebra/50i-50d@2",
            ]
        );
    }

    #[test]
    fn passes_within_tolerance() {
        let d = doc(
            &[("0i-0d", 1.0), ("50i-50d", 2.0)],
            &[("0i-0d", 0.8), ("50i-50d", 2.4)],
        );
        let r = compare(&d, "baseline", "pr", 0.30, 0.0, None).unwrap();
        assert!(r.passed(), "{:?}", r.regressions());
        assert_eq!(r.points.len(), 2);
    }

    #[test]
    fn flags_regression_beyond_tolerance() {
        let d = doc(
            &[("0i-0d", 1.0), ("50i-50d", 2.0)],
            &[("0i-0d", 0.6), ("50i-50d", 2.0)],
        );
        let r = compare(&d, "baseline", "pr", 0.30, 0.0, None).unwrap();
        assert!(!r.passed());
        let regs = r.regressions();
        assert_eq!(regs.len(), 1);
        assert!(regs[0].key.contains("0i-0d"));
        assert!(regs[0].delta < -0.30);
    }

    #[test]
    fn tiny_baselines_are_never_flagged() {
        let d = doc(&[("0i-0d", 0.001)], &[("0i-0d", 0.0001)]);
        let r = compare(&d, "baseline", "pr", 0.30, 0.01, None).unwrap();
        assert!(r.passed());
    }

    #[test]
    fn missing_label_is_an_error() {
        let d = doc(&[("0i-0d", 1.0)], &[("0i-0d", 1.0)]);
        assert!(compare(&d, "baseline", "nope", 0.3, 0.0, None).is_err());
        assert!(compare(&d, "nope", "pr", 0.3, 0.0, None).is_err());
    }

    #[test]
    fn disjoint_points_are_an_error() {
        let d = doc(&[("0i-0d", 1.0)], &[("50i-50d", 1.0)]);
        assert!(compare(&d, "baseline", "pr", 0.3, 0.0, None).is_err());
    }

    #[test]
    fn oversubscribed_cells_are_skipped_not_gated_and_not_missing() {
        let row = |mix: &str, threads: f64, mops: f64, over: bool| {
            Json::obj(vec![
                ("mix", Json::Str(mix.to_string())),
                ("threads", Json::Num(threads)),
                ("mops", Json::Num(mops)),
                ("cores", Json::Num(1.0)),
                ("oversubscribed", Json::Bool(over)),
            ])
        };
        let run = |label: &str, rows: Vec<Json>| {
            Json::obj(vec![
                ("label", Json::Str(label.into())),
                ("structure", Json::Str("chromatic".into())),
                ("results", Json::Arr(rows)),
            ])
        };
        let d = Json::obj(vec![(
            "runs",
            Json::Arr(vec![
                run(
                    "baseline",
                    vec![row("0i-0d", 1.0, 1.0, false), row("0i-0d", 4.0, 2.0, true)],
                ),
                run(
                    "pr",
                    // The 4-thread cell collapsed by 10x — but it ran
                    // oversubscribed on a 1-core host, so it is skipped
                    // rather than flagged, and not reported missing.
                    vec![row("0i-0d", 1.0, 1.0, false), row("0i-0d", 4.0, 0.2, true)],
                ),
            ]),
        )]);
        let r = compare(&d, "baseline", "pr", 0.30, 0.0, None).unwrap();
        assert!(r.passed(), "{:?}", r.regressions());
        assert!(!r.all_skipped());
        assert_eq!(r.points.len(), 1);
        assert_eq!(r.skipped, vec!["chromatic/0i-0d@4".to_string()]);
        assert!(r.missing.is_empty());
        // One-sided oversubscription (host changed between runs) still
        // skips: the cell is incomparable either way.
        let d = Json::obj(vec![(
            "runs",
            Json::Arr(vec![
                run("baseline", vec![row("0i-0d", 4.0, 2.0, true)]),
                run("pr", vec![row("0i-0d", 4.0, 0.2, false)]),
            ]),
        )]);
        let r = compare(&d, "baseline", "pr", 0.30, 0.0, None).unwrap();
        assert!(r.passed());
        // Nothing was compared — the bin must treat this as a distinct
        // failure, not a pass.
        assert!(r.all_skipped());
        assert_eq!(r.skipped.len(), 1);
    }

    #[test]
    fn rows_without_provenance_still_gate() {
        // Pre-provenance artifacts (no `oversubscribed` field) keep the
        // old behavior: every cell is compared.
        let d = doc(&[("0i-0d", 1.0)], &[("0i-0d", 0.5)]);
        let r = compare(&d, "baseline", "pr", 0.30, 0.0, None).unwrap();
        assert!(!r.passed());
        assert!(r.skipped.is_empty());
    }

    #[test]
    fn dropped_baseline_points_fail_the_gate() {
        // The candidate lost a whole cell (panic mid-sweep, changed
        // defaults): the surviving cells pass, the gate must not.
        let d = doc(
            &[("0i-0d", 1.0), ("50i-50d", 2.0)],
            &[("0i-0d", 1.0)], // 50i-50d vanished
        );
        let r = compare(&d, "baseline", "pr", 0.30, 0.0, None).unwrap();
        assert!(r.regressions().is_empty());
        assert!(!r.passed());
        assert_eq!(r.missing, vec!["chromatic/50i-50d@2".to_string()]);
        // Extra candidate-only points are fine (a new cell is not a loss).
        let d = doc(&[("0i-0d", 1.0)], &[("0i-0d", 1.0), ("50i-50d", 2.0)]);
        assert!(compare(&d, "baseline", "pr", 0.30, 0.0, None)
            .unwrap()
            .passed());
    }

    #[test]
    fn tail_regression_fails_only_with_p99_gating_on() {
        // Throughput held; p99 jumped 4× (two histogram buckets).
        let d = doc_with_lat(&[("0i-0d", 1.0, 1000.0)], &[("0i-0d", 1.0, 4100.0)]);
        // Tail gating off: passes.
        let r = compare(&d, "baseline", "pr", 0.30, 0.0, None).unwrap();
        assert!(r.passed());
        // Tail gating on (tolerance 1.0 = may double): fails.
        let r = compare(&d, "baseline", "pr", 0.30, 0.0, Some(1.0)).unwrap();
        assert!(!r.passed());
        let regs = r.regressions();
        assert_eq!(regs.len(), 1);
        assert!(regs[0].tail_regressed && !regs[0].regressed);
        // A within-tolerance tail move (exactly one bucket, 2×) passes.
        let d = doc_with_lat(&[("0i-0d", 1.0, 1000.0)], &[("0i-0d", 1.0, 2000.0)]);
        let r = compare(&d, "baseline", "pr", 0.30, 0.0, Some(1.0)).unwrap();
        assert!(r.passed(), "{:?}", r.regressions());
    }

    #[test]
    fn rows_without_percentiles_never_tail_fail() {
        // Old artifacts (no latency fields) stay comparable under
        // --p99-tolerance: the tail check simply doesn't apply.
        let d = doc(&[("0i-0d", 1.0)], &[("0i-0d", 1.0)]);
        let r = compare(&d, "baseline", "pr", 0.30, 0.0, Some(1.0)).unwrap();
        assert!(r.passed());
        assert!(r.points[0].cand_lat.is_none());
    }

    #[test]
    fn tiny_baselines_are_never_tail_flagged() {
        let d = doc_with_lat(&[("0i-0d", 0.001, 100.0)], &[("0i-0d", 0.001, 99000.0)]);
        let r = compare(&d, "baseline", "pr", 0.30, 0.01, Some(1.0)).unwrap();
        assert!(r.passed());
    }

    #[test]
    fn summary_renders_every_cell_and_flags_tails() {
        let d = doc_with_lat(&[("0i-0d", 1.0, 1000.0)], &[("0i-0d", 1.0, 9000.0)]);
        let r = compare(&d, "baseline", "pr", 0.30, 0.0, Some(1.0)).unwrap();
        let s = r.render_summary("baseline", "pr");
        assert!(s.contains("chromatic/0i-0d@2"));
        assert!(s.contains("tail regressed"));
        assert!(s.contains("9.0µs"), "{s}");
    }
}
