//! The CI bench gate: compares two labeled runs of a bench artifact
//! (`BENCH_fig8.json` schema) and flags throughput regressions.
//!
//! The gate is deliberately coarse — CI machines are noisy, so the default
//! tolerance is a large 30% and the comparison is per *(structure, mix,
//! threads)* point rather than aggregate, which catches a mix-specific
//! cliff (e.g. a range-scan change tanking only `0i-0d`) that an average
//! would smear out.

use crate::json::Json;

/// One compared throughput point.
#[derive(Debug, Clone)]
pub struct GatePoint {
    /// `structure/mix@threads` identifier for messages.
    pub key: String,
    /// Baseline throughput (Mops/s).
    pub base: f64,
    /// Candidate throughput (Mops/s).
    pub cand: f64,
    /// `cand / base - 1`, negative for slowdowns.
    pub delta: f64,
    /// Whether the slowdown exceeds the tolerance.
    pub regressed: bool,
}

/// Result of a gate comparison.
#[derive(Debug, Default)]
pub struct GateReport {
    /// Every point present in both runs.
    pub points: Vec<GatePoint>,
    /// Baseline points with no candidate counterpart. A dropped point is
    /// a gate failure: a candidate sweep that lost a (structure, mix,
    /// threads) cell — a panic mid-sweep, a changed default — must not
    /// pass just because the surviving cells look fine.
    pub missing: Vec<String>,
    /// Points excluded because either side ran oversubscribed (row field
    /// `"oversubscribed": true`, written by the artifact bins when a cell
    /// used more worker threads than host cores). Such cells measure the
    /// scheduler, not the structure, so they neither pass, fail, nor
    /// count as missing.
    pub skipped: Vec<String>,
}

impl GateReport {
    /// The points that regressed beyond tolerance.
    pub fn regressions(&self) -> Vec<&GatePoint> {
        self.points.iter().filter(|p| p.regressed).collect()
    }

    /// Whether the gate passes: no regressed point and no baseline point
    /// missing from the candidate.
    pub fn passed(&self) -> bool {
        self.points.iter().all(|p| !p.regressed) && self.missing.is_empty()
    }
}

fn find_run<'a>(doc: &'a Json, label: &str) -> Option<&'a Json> {
    doc.get("runs")?
        .items()
        .iter()
        .find(|r| r.get("label").and_then(Json::as_str) == Some(label))
}

fn point_key(run: &Json, result: &Json) -> Option<(String, f64)> {
    let mix = result.get("mix")?.as_str()?;
    let threads = result.get("threads")?.as_f64()?;
    // The structure lives per-run in bench_fig8 and per-result in
    // bench_range (which can sweep several structures in one run).
    let structure = result
        .get("structure")
        .or_else(|| run.get("structure"))
        .and_then(Json::as_str)
        .unwrap_or("?");
    let mops = result.get("mops")?.as_f64()?;
    Some((format!("{structure}/{mix}@{threads}"), mops))
}

/// Whether a result row was measured with more worker threads than the
/// host had cores (absent field means "not oversubscribed": older
/// artifacts carry no provenance).
fn oversubscribed(result: &Json) -> bool {
    result
        .get("oversubscribed")
        .and_then(Json::as_bool)
        .unwrap_or(false)
}

/// Compares the runs labeled `baseline` and `candidate` in `doc`. A point
/// regresses when `cand < base * (1 - tolerance)`; points below
/// `min_mops` in the baseline are compared but never flagged (too noisy to
/// gate on); points oversubscribed on either side are skipped outright
/// (see [`GateReport::skipped`]). Errors when either label is missing or
/// no points overlap.
pub fn compare(
    doc: &Json,
    baseline: &str,
    candidate: &str,
    tolerance: f64,
    min_mops: f64,
) -> Result<GateReport, String> {
    let base_run = find_run(doc, baseline).ok_or_else(|| format!("no run labeled `{baseline}`"))?;
    let cand_run =
        find_run(doc, candidate).ok_or_else(|| format!("no run labeled `{candidate}`"))?;
    let base_points: Vec<(String, f64, bool)> = base_run
        .get("results")
        .map(|r| r.items())
        .unwrap_or_default()
        .iter()
        .filter_map(|res| point_key(base_run, res).map(|(k, m)| (k, m, oversubscribed(res))))
        .collect();
    let mut report = GateReport::default();
    for cand_res in cand_run
        .get("results")
        .map(|r| r.items())
        .unwrap_or_default()
    {
        let Some((key, cand)) = point_key(cand_run, cand_res) else {
            continue;
        };
        let Some((_, base, base_over)) = base_points.iter().find(|(k, _, _)| *k == key) else {
            continue;
        };
        if *base_over || oversubscribed(cand_res) {
            report.skipped.push(key);
            continue;
        }
        let base = *base;
        let delta = if base > 0.0 { cand / base - 1.0 } else { 0.0 };
        let regressed = base >= min_mops && cand < base * (1.0 - tolerance);
        report.points.push(GatePoint {
            key,
            base,
            cand,
            delta,
            regressed,
        });
    }
    if report.points.is_empty() && report.skipped.is_empty() {
        return Err(format!(
            "runs `{baseline}` and `{candidate}` share no comparable points"
        ));
    }
    report.missing = base_points
        .iter()
        .filter(|(k, _, _)| {
            !report.points.iter().any(|p| p.key == *k) && !report.skipped.contains(k)
        })
        .map(|(k, _, _)| k.clone())
        .collect();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(base: &[(&str, f64)], cand: &[(&str, f64)]) -> Json {
        let results = |points: &[(&str, f64)]| {
            Json::Arr(
                points
                    .iter()
                    .map(|(mix, mops)| {
                        Json::obj(vec![
                            ("mix", Json::Str(mix.to_string())),
                            ("threads", Json::Num(2.0)),
                            ("mops", Json::Num(*mops)),
                        ])
                    })
                    .collect(),
            )
        };
        Json::obj(vec![
            ("schema", Json::Str("bench_fig8/v1".into())),
            (
                "runs",
                Json::Arr(vec![
                    Json::obj(vec![
                        ("label", Json::Str("baseline".into())),
                        ("structure", Json::Str("chromatic".into())),
                        ("results", results(base)),
                    ]),
                    Json::obj(vec![
                        ("label", Json::Str("pr".into())),
                        ("structure", Json::Str("chromatic".into())),
                        ("results", results(cand)),
                    ]),
                ]),
            ),
        ])
    }

    #[test]
    fn passes_within_tolerance() {
        let d = doc(
            &[("0i-0d", 1.0), ("50i-50d", 2.0)],
            &[("0i-0d", 0.8), ("50i-50d", 2.4)],
        );
        let r = compare(&d, "baseline", "pr", 0.30, 0.0).unwrap();
        assert!(r.passed(), "{:?}", r.regressions());
        assert_eq!(r.points.len(), 2);
    }

    #[test]
    fn flags_regression_beyond_tolerance() {
        let d = doc(
            &[("0i-0d", 1.0), ("50i-50d", 2.0)],
            &[("0i-0d", 0.6), ("50i-50d", 2.0)],
        );
        let r = compare(&d, "baseline", "pr", 0.30, 0.0).unwrap();
        assert!(!r.passed());
        let regs = r.regressions();
        assert_eq!(regs.len(), 1);
        assert!(regs[0].key.contains("0i-0d"));
        assert!(regs[0].delta < -0.30);
    }

    #[test]
    fn tiny_baselines_are_never_flagged() {
        let d = doc(&[("0i-0d", 0.001)], &[("0i-0d", 0.0001)]);
        let r = compare(&d, "baseline", "pr", 0.30, 0.01).unwrap();
        assert!(r.passed());
    }

    #[test]
    fn missing_label_is_an_error() {
        let d = doc(&[("0i-0d", 1.0)], &[("0i-0d", 1.0)]);
        assert!(compare(&d, "baseline", "nope", 0.3, 0.0).is_err());
        assert!(compare(&d, "nope", "pr", 0.3, 0.0).is_err());
    }

    #[test]
    fn disjoint_points_are_an_error() {
        let d = doc(&[("0i-0d", 1.0)], &[("50i-50d", 1.0)]);
        assert!(compare(&d, "baseline", "pr", 0.3, 0.0).is_err());
    }

    #[test]
    fn oversubscribed_cells_are_skipped_not_gated_and_not_missing() {
        let row = |mix: &str, threads: f64, mops: f64, over: bool| {
            Json::obj(vec![
                ("mix", Json::Str(mix.to_string())),
                ("threads", Json::Num(threads)),
                ("mops", Json::Num(mops)),
                ("cores", Json::Num(1.0)),
                ("oversubscribed", Json::Bool(over)),
            ])
        };
        let run = |label: &str, rows: Vec<Json>| {
            Json::obj(vec![
                ("label", Json::Str(label.into())),
                ("structure", Json::Str("chromatic".into())),
                ("results", Json::Arr(rows)),
            ])
        };
        let d = Json::obj(vec![(
            "runs",
            Json::Arr(vec![
                run(
                    "baseline",
                    vec![row("0i-0d", 1.0, 1.0, false), row("0i-0d", 4.0, 2.0, true)],
                ),
                run(
                    "pr",
                    // The 4-thread cell collapsed by 10x — but it ran
                    // oversubscribed on a 1-core host, so it is skipped
                    // rather than flagged, and not reported missing.
                    vec![row("0i-0d", 1.0, 1.0, false), row("0i-0d", 4.0, 0.2, true)],
                ),
            ]),
        )]);
        let r = compare(&d, "baseline", "pr", 0.30, 0.0).unwrap();
        assert!(r.passed(), "{:?}", r.regressions());
        assert_eq!(r.points.len(), 1);
        assert_eq!(r.skipped, vec!["chromatic/0i-0d@4".to_string()]);
        assert!(r.missing.is_empty());
        // One-sided oversubscription (host changed between runs) still
        // skips: the cell is incomparable either way.
        let d = Json::obj(vec![(
            "runs",
            Json::Arr(vec![
                run("baseline", vec![row("0i-0d", 4.0, 2.0, true)]),
                run("pr", vec![row("0i-0d", 4.0, 0.2, false)]),
            ]),
        )]);
        let r = compare(&d, "baseline", "pr", 0.30, 0.0).unwrap();
        assert!(r.passed());
        assert_eq!(r.skipped.len(), 1);
    }

    #[test]
    fn rows_without_provenance_still_gate() {
        // Pre-provenance artifacts (no `oversubscribed` field) keep the
        // old behavior: every cell is compared.
        let d = doc(&[("0i-0d", 1.0)], &[("0i-0d", 0.5)]);
        let r = compare(&d, "baseline", "pr", 0.30, 0.0).unwrap();
        assert!(!r.passed());
        assert!(r.skipped.is_empty());
    }

    #[test]
    fn dropped_baseline_points_fail_the_gate() {
        // The candidate lost a whole cell (panic mid-sweep, changed
        // defaults): the surviving cells pass, the gate must not.
        let d = doc(
            &[("0i-0d", 1.0), ("50i-50d", 2.0)],
            &[("0i-0d", 1.0)], // 50i-50d vanished
        );
        let r = compare(&d, "baseline", "pr", 0.30, 0.0).unwrap();
        assert!(r.regressions().is_empty());
        assert!(!r.passed());
        assert_eq!(r.missing, vec!["chromatic/50i-50d@2".to_string()]);
        // Extra candidate-only points are fine (a new cell is not a loss).
        let d = doc(&[("0i-0d", 1.0)], &[("0i-0d", 1.0), ("50i-50d", 2.0)]);
        assert!(compare(&d, "baseline", "pr", 0.30, 0.0).unwrap().passed());
    }
}
