//! Criterion mirror of Figure 8: per-operation cost of each structure on
//! one representative cell per contention level (single-threaded criterion
//! timing; the multi-threaded sweep lives in `--bin figure8`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::{rngs::StdRng, Rng, SeedableRng};
use workload::{make_map, prefill, Mix, SuiteConfig, ALL_MAPS};

fn bench_mixes(c: &mut Criterion) {
    let base_cfg = SuiteConfig::from_env();
    for (range, label) in [(100u64, "hi-contention-1e2"), (10_000, "moderate-1e4")] {
        // The sharded façade's boundary table must match the block's
        // keyspace or its cells measure a one-shard table (an explicit
        // NBTREE_SHARD_SPAN still wins).
        let cfg = base_cfg.for_key_range(range);
        let mut group = c.benchmark_group(format!("fig8/{label}/50i-50d"));
        group.sample_size(20);
        group.measurement_time(std::time::Duration::from_secs(1));
        group.warm_up_time(std::time::Duration::from_millis(400));
        let mix = Mix::updates(50, 50);
        for name in ALL_MAPS {
            let map = make_map(name, &cfg).unwrap();
            prefill(map.as_ref(), range, mix, 7);
            let mut rng = StdRng::seed_from_u64(99);
            group.bench_function(BenchmarkId::from_parameter(name), |b| {
                b.iter(|| {
                    let k = rng.gen_range(0..range);
                    if rng.gen_bool(0.5) {
                        map.insert(k, k)
                    } else {
                        map.remove(&k)
                    }
                })
            });
        }
        group.finish();

        let mut group = c.benchmark_group(format!("fig8/{label}/0i-0d"));
        group.sample_size(20);
        group.measurement_time(std::time::Duration::from_secs(1));
        group.warm_up_time(std::time::Duration::from_millis(400));
        let mix = Mix::updates(0, 0);
        for name in ALL_MAPS {
            let map = make_map(name, &cfg).unwrap();
            prefill(map.as_ref(), range, mix, 7);
            let mut rng = StdRng::seed_from_u64(99);
            group.bench_function(BenchmarkId::from_parameter(name), |b| {
                b.iter(|| map.get(&rng.gen_range(0..range)))
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_mixes);
criterion_main!(benches);
