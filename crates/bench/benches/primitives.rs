//! Microbenchmarks of the template machinery itself: the cost of one
//! template update (LLX·2 + SCX) and one read-only search, isolated on the
//! chromatic tree and the template-driven plain BST.

use criterion::{criterion_group, criterion_main, Criterion};
use nbbst::NbBst;
use nbtree::ChromaticTree;
use rand::{rngs::StdRng, Rng, SeedableRng};

fn bench_primitives(c: &mut Criterion) {
    let mut group = c.benchmark_group("primitives");
    group.sample_size(30);
    group.measurement_time(std::time::Duration::from_secs(1));
    group.warm_up_time(std::time::Duration::from_millis(400));

    // Pure-read search (property C3: no synchronization at all).
    let t = ChromaticTree::new();
    for i in 0..10_000u64 {
        t.insert(i, i);
    }
    let mut rng = StdRng::seed_from_u64(5);
    group.bench_function("chromatic/get-10k", |b| {
        b.iter(|| t.get(&rng.gen_range(0..10_000)))
    });

    // One template update: insert+remove pair = 2×(search + LLXs + SCX).
    group.bench_function("chromatic/insert-remove-pair", |b| {
        let mut k = 10_000u64;
        b.iter(|| {
            k += 1;
            t.insert(k, k);
            t.remove(&k)
        })
    });

    let bst = NbBst::new();
    for i in 0..10_000u64 {
        bst.insert(i, i);
    }
    group.bench_function("nbbst/insert-remove-pair", |b| {
        let mut k = 10_000u64;
        b.iter(|| {
            k += 1;
            bst.insert(k, k);
            bst.remove(&k)
        })
    });

    // Successor uses LLX + VLX validation: measures the ordered-query path.
    group.bench_function("chromatic/successor-10k", |b| {
        b.iter(|| t.successor(&rng.gen_range(0..10_000)))
    });

    group.finish();
}

criterion_group!(benches, bench_primitives);
criterion_main!(benches);
