//! Criterion mirror of Figure 9: single-threaded per-op cost versus the
//! sequential red-black tree at key range 1e5 (1e6 in the figure binary;
//! reduced here to keep criterion's warmup affordable).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::{rngs::StdRng, Rng, SeedableRng};
use workload::{make_map, prefill, Mix, SuiteConfig, ALL_MAPS};

fn bench_overhead(c: &mut Criterion) {
    let range = 100_000u64;
    // Size the sharded façade's boundary table to this sweep's keyspace
    // (an explicit NBTREE_SHARD_SPAN still wins).
    let cfg = SuiteConfig::from_env().for_key_range(range);
    let mix = Mix::updates(20, 10);

    let mut group = c.benchmark_group("fig9/20i-10d");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(1));
    group.warm_up_time(std::time::Duration::from_millis(400));

    // Sequential baseline.
    let mut seq = seqrbt::RbTree::new();
    let mut rng = StdRng::seed_from_u64(7);
    let mut count = 0;
    while count < range * 2 / 3 {
        let k = rng.gen_range(0..range);
        if seq.insert(k, k).is_none() {
            count += 1;
        }
    }
    let mut rng2 = StdRng::seed_from_u64(42);
    group.bench_function(BenchmarkId::from_parameter("seq-rbt"), |b| {
        b.iter(|| {
            let k = rng2.gen_range(0..range);
            let dice = rng2.gen_range(0..100);
            if dice < 20 {
                seq.insert(k, k);
            } else if dice < 30 {
                seq.remove(&k);
            } else {
                std::hint::black_box(seq.get(&k));
            }
        })
    });

    for name in ALL_MAPS {
        if *name == "rbstm" {
            continue; // as in the paper: STM prefill at large ranges is prohibitive
        }
        let map = make_map(name, &cfg).unwrap();
        prefill(map.as_ref(), range, mix, 7);
        let mut rng = StdRng::seed_from_u64(42);
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| {
                let k = rng.gen_range(0..range);
                let dice = rng.gen_range(0..100);
                if dice < 20 {
                    map.insert(k, k);
                } else if dice < 30 {
                    map.remove(&k);
                } else {
                    std::hint::black_box(map.get(&k));
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_overhead);
criterion_main!(benches);
