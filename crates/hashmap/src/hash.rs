//! The map's default hasher: a deterministic multiply-rotate hash (the
//! `fxhash` family) with a final avalanche.
//!
//! Determinism is a feature here, not a compromise: the whole test
//! pyramid replays scripted workloads against model oracles, and a
//! per-instance random seed (as in `std`'s `RandomState`) would make
//! table layout — and therefore displacement/resize schedules —
//! unreproducible between a failing run and its rerun. The suite stores
//! `u64` keys from benchmark-controlled distributions, so HashDoS
//! resistance buys nothing; callers that do want seeded hashing pass
//! their own [`BuildHasher`] to
//! [`HopMap::with_hasher`](crate::HopMap::with_hasher).
//!
//! The final avalanche matters because the map derives a key's home
//! bucket from the *low* bits of the hash (`hash & (capacity - 1)`), and
//! a bare multiply pushes most of its entropy into the high bits —
//! sequential keys would otherwise stride through the table in lockstep.

use std::hash::{BuildHasher, Hasher};

/// The `fxhash` multiplier (a 64-bit prime close to 2^64 / φ).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Multiply-rotate streaming hasher; see the module docs for why the
/// suite prefers a deterministic hash.
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher {
    state: u64,
}

impl Hasher for FxHasher {
    fn finish(&self) -> u64 {
        // Finalizer (splitmix64-style): spread the multiplied state's
        // entropy back down into the low bits the table indexes by.
        let mut h = self.state;
        h ^= h >> 32;
        h = h.wrapping_mul(0xd6e8_feb8_6659_fd93);
        h ^= h >> 32;
        h = h.wrapping_mul(0xd6e8_feb8_6659_fd93);
        h ^= h >> 32;
        h
    }

    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            self.write_u64(u64::from_le_bytes(word));
        }
    }

    fn write_u64(&mut self, n: u64) {
        self.state = (self.state.rotate_left(5) ^ n).wrapping_mul(SEED);
    }
}

/// [`BuildHasher`] for [`FxHasher`]: stateless, so every map instance
/// (and every rerun) hashes identically.
#[derive(Clone, Copy, Debug, Default)]
pub struct FxBuildHasher;

impl BuildHasher for FxBuildHasher {
    type Hasher = FxHasher;
    fn build_hasher(&self) -> FxHasher {
        FxHasher::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hash_one(k: u64) -> u64 {
        FxBuildHasher.hash_one(k)
    }

    #[test]
    fn deterministic_across_instances() {
        assert_eq!(hash_one(12345), hash_one(12345));
        assert_ne!(hash_one(1), hash_one(2));
    }

    #[test]
    fn sequential_keys_spread_in_the_low_bits() {
        // The home bucket is `hash & (cap - 1)`; sequential keys must not
        // collapse into a handful of buckets.
        let mask = 1023u64;
        let mut buckets = std::collections::HashSet::new();
        for k in 0..1024u64 {
            buckets.insert(hash_one(k) & mask);
        }
        assert!(
            buckets.len() > 600,
            "only {} distinct buckets for 1024 sequential keys",
            buckets.len()
        );
    }
}
