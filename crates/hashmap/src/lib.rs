//! # A concurrent hopscotch-style hash map
//!
//! The suite's hash-accelerated point-op tier: [`HopMap`] answers
//! `get`/`insert`/`remove` in O(1) expected probes where the trees pay
//! O(log n) pointer chases, at the price of ordered-scan atomicity. The
//! narrative version of this design (and the hybrid composition with the
//! chromatic tree) is the `docs/HASHING.md` chapter of the book.
//!
//! ## Layout
//!
//! A table generation is a power-of-two array of *home buckets*, each
//! owning a **neighborhood** of [`HOP_RANGE`] consecutive slots
//! described by a per-bucket *hop bitmap* (one `u32`: bit `i` set ⇔ slot
//! `home + i` holds one of this bucket's entries). The physical slot
//! array carries [`ADD_RANGE`] overflow slots past the last bucket
//! instead of wrapping around, so a neighborhood is always a contiguous
//! ascending interval. A lookup hashes to the home bucket and probes
//! only the slots its bitmap names — at most `HOP_RANGE` reads, usually
//! one or two cache lines.
//!
//! An insert that finds its neighborhood full performs the classic
//! hopscotch *displacement*: find any free slot within `ADD_RANGE`,
//! then repeatedly move some entry from below the free slot up into it
//! (legal whenever the free slot is still within *that* entry's own
//! neighborhood), walking the hole home-ward until it lands inside the
//! inserting key's neighborhood. If no candidate can move, the table
//! **resizes**.
//!
//! ## Concurrency protocol
//!
//! * **Writers** (insert/remove/displace) hold per-stripe locks — one
//!   `Mutex` per 64 physical slots — acquired in increasing index order
//!   only, which with the no-wraparound layout makes deadlock
//!   impossible. A neighborhood's hop word is frozen while its slots'
//!   stripes are held.
//! * **Readers** are lock-free. The one hazard is a displacement racing
//!   a lookup (the key is present but mid-move, visible under neither
//!   its old nor its new slot for a moment); a per-bucket **seqlock
//!   version** (odd = displacement in flight, CAS-acquired so two
//!   displacers of one bucket serialize) lets a missing lookup detect
//!   the race and retry. Plain insert/remove never bump versions — they
//!   publish or retract a key with a single atomic hop-bit edit that
//!   readers either see or don't.
//! * **Resize** takes every stripe (excluding all writers), re-checks it
//!   still owns the current generation, migrates entry *pointers* into a
//!   table of twice the capacity, publishes it with one store, and
//!   retires the old generation through the epoch. The old table is
//!   never modified, so a reader that loaded it keeps probing a frozen,
//!   complete snapshot and linearizes at its table-pointer load.
//! * **Reclamation** is epoch-based via the suite's
//!   [`llxscx::guard_cache`] weighted pins: point ops share the cached
//!   per-thread guard, batch entry points take one pin per
//!   [`llxscx::guard_cache::REPIN_OPS`]-chunk — the same cadence (and
//!   the same documented reclamation-lag bound) as the chromatic tree's
//!   bulk paths. Retired entries and retired table generations are
//!   `defer_destroy`ed; a retired generation's drop frees only its
//!   arrays (the entries now belong to the successor).
//!
//! ## What `range` means here
//!
//! [`HopMap::sorted_range`] is a **per-key-linearizable sorted drain**,
//! not an atomic snapshot: each bucket is read as a seqlock-consistent
//! unit, so scans are sorted, duplicate-free, phantom-free and never
//! miss a key that stays present for the whole scan — but different
//! buckets may reflect different instants. This is the same scope the
//! suite's skip list documents; callers that need an atomic scan use a
//! VLX-validated tree (or the hybrid tier, which delegates scans to
//! one).

#![warn(missing_docs)]

mod hash;
mod map;

pub use hash::{FxBuildHasher, FxHasher};
pub use map::{AuditReport, HopMap, ADD_RANGE, HOP_RANGE};

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hasher};

    /// Identity hash: the key *is* the hash, so tests can aim keys at
    /// chosen home buckets and force displacement chains.
    #[derive(Clone, Copy, Default)]
    struct IdentityBuild;
    struct IdentityHasher(u64);
    impl Hasher for IdentityHasher {
        fn finish(&self) -> u64 {
            self.0
        }
        fn write(&mut self, _: &[u8]) {
            unreachable!("u64 keys hash via write_u64");
        }
        fn write_u64(&mut self, n: u64) {
            self.0 = n;
        }
    }
    impl BuildHasher for IdentityBuild {
        type Hasher = IdentityHasher;
        fn build_hasher(&self) -> IdentityHasher {
            IdentityHasher(0)
        }
    }

    #[test]
    fn point_ops_round_trip() {
        let m: HopMap<u64, u64> = HopMap::new();
        assert_eq!(m.get(&1), None);
        assert_eq!(m.insert(1, 10), None);
        assert_eq!(m.insert(2, 20), None);
        assert_eq!(m.get(&1), Some(10));
        assert_eq!(m.insert(1, 11), Some(10), "replace returns displaced");
        assert_eq!(m.get(&1), Some(11));
        assert_eq!(m.len(), 2);
        assert_eq!(m.remove(&1), Some(11));
        assert_eq!(m.remove(&1), None);
        assert_eq!(m.get(&1), None);
        assert_eq!(m.len(), 1);
        assert!(!m.is_empty());
    }

    #[test]
    fn grows_and_keeps_everything() {
        let m: HopMap<u64, u64> = HopMap::with_capacity(64);
        let n = 10_000u64;
        for k in 0..n {
            assert_eq!(m.insert(k, k * 3), None);
        }
        assert!(m.resizes() >= 1, "10k keys into cap 64 must grow");
        assert_eq!(m.len(), n as usize);
        for k in 0..n {
            assert_eq!(m.get(&k), Some(k * 3), "key {k} lost across growth");
        }
        let report = m.audit();
        assert!(report.is_valid(), "{:?}", report.errors);
        assert!(report.max_probe < HOP_RANGE);
    }

    #[test]
    fn sorted_drain_is_sorted_and_complete() {
        let m: HopMap<u64, u64> = HopMap::new();
        for k in (0..500u64).rev() {
            m.insert(k * 7, k);
        }
        let items = m.sorted_items();
        assert_eq!(items.len(), 500);
        assert!(items.windows(2).all(|w| w[0].0 < w[1].0));
        let mid = m.sorted_range(&70, &140);
        assert_eq!(
            mid,
            (10..=20).map(|k| (k * 7, k)).collect::<Vec<_>>(),
            "inclusive range [70, 140]"
        );
        assert_eq!(m.sorted_range(&10, &5), vec![], "inverted range is empty");
    }

    #[test]
    fn batches_match_per_element_application() {
        let batched: HopMap<u64, u64> = HopMap::new();
        let pointwise: HopMap<u64, u64> = HopMap::new();
        // Duplicates in one batch resolve in input order.
        let batch: Vec<(u64, u64)> = (0..200).map(|i| (i % 50, i)).collect();
        let expect: Vec<_> = batch.iter().map(|&(k, v)| pointwise.insert(k, v)).collect();
        assert_eq!(batched.insert_batch(&batch), expect);
        let keys: Vec<u64> = (0..60).collect();
        assert_eq!(
            batched.get_batch(&keys),
            keys.iter().map(|k| pointwise.get(k)).collect::<Vec<_>>()
        );
        let dels: Vec<u64> = (0..50).chain(0..10).collect();
        assert_eq!(
            batched.remove_batch(&dels),
            dels.iter().map(|k| pointwise.remove(k)).collect::<Vec<_>>()
        );
        assert_eq!(batched.sorted_items(), pointwise.sorted_items());
    }

    #[test]
    fn displacement_chain_keeps_keys_reachable() {
        // Identity hash: fill slots [0, 40) via homes 0..40, then insert
        // more keys homed at 0. The free slot is far from home, so the
        // insert must displace a chain of entries upward; every key must
        // stay reachable and the audit clean.
        let m: HopMap<u64, u64, IdentityBuild> = HopMap::with_hasher(IdentityBuild);
        let cap = m.capacity() as u64;
        for h in 0..40u64 {
            m.insert(h, h); // slot h, home h
        }
        // Keys ≡ 0 (mod cap) all home at bucket 0.
        for i in 1..=8u64 {
            m.insert(i * cap, 1000 + i);
        }
        for h in 0..40u64 {
            assert_eq!(m.get(&h), Some(h), "displaced key {h} lost");
        }
        for i in 1..=8u64 {
            assert_eq!(m.get(&(i * cap)), Some(1000 + i));
        }
        let report = m.audit();
        assert!(report.is_valid(), "{:?}", report.errors);
        assert!(report.max_probe < HOP_RANGE, "bound exceeded");
    }

    #[test]
    fn same_neighborhood_overflow_forces_growth_not_corruption() {
        // More same-home keys than a neighborhood holds: displacement is
        // impossible (every candidate shares the home), so the map must
        // grow until the identity-hash residues spread out.
        let m: HopMap<u64, u64, IdentityBuild> = HopMap::with_hasher(IdentityBuild);
        let cap = m.capacity() as u64;
        let n = 3 * HOP_RANGE as u64;
        for i in 0..n {
            m.insert(i * cap, i); // all home 0 in the original table
        }
        assert!(m.resizes() >= 1, "same-home overflow must trigger growth");
        for i in 0..n {
            assert_eq!(m.get(&(i * cap)), Some(i));
        }
        let report = m.audit();
        assert!(report.is_valid(), "{:?}", report.errors);
    }

    #[test]
    fn audit_reports_probe_distance_and_occupancy() {
        let m: HopMap<u64, u64> = HopMap::with_capacity(256);
        for k in 0..100u64 {
            m.insert(k, k);
        }
        let report = m.audit();
        assert!(report.is_valid());
        assert_eq!(report.occupied, 100);
        assert_eq!(report.capacity, 256);
        assert!(report.max_probe < HOP_RANGE);
    }

    #[test]
    fn non_u64_keys_work() {
        // The suite drives u64 everywhere; keep the generic surface honest.
        let m: HopMap<String, String> = HopMap::new();
        assert_eq!(m.insert("alpha".into(), "a".into()), None);
        assert_eq!(m.insert("beta".into(), "b".into()), None);
        assert_eq!(m.get(&"alpha".to_string()), Some("a".to_string()));
        assert_eq!(m.insert("alpha".into(), "a2".into()), Some("a".to_string()));
        assert_eq!(m.remove(&"beta".to_string()), Some("b".to_string()));
        assert_eq!(m.len(), 1);
    }
}
