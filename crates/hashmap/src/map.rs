//! The concurrent hopscotch table itself. See the crate docs for the
//! layout and the full safety argument; `docs/HASHING.md` in the
//! repository root is the narrative version.

use std::hash::{BuildHasher, Hash};
use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};

use crossbeam_epoch::{unprotected, Atomic, Guard, Owned, Shared};
use llxscx::guard_cache;
use parking_lot::Mutex;

use crate::hash::FxBuildHasher;

/// Neighborhood width `H`: every key rests within `H` slots of its home
/// bucket, so a lookup probes at most the `H` slots named by one hop
/// bitmap (one `u32`). 32 slots sustain load factors past 0.9 before
/// displacement starts failing (the classic hopscotch trade-off).
pub const HOP_RANGE: usize = 32;

/// How far past the home bucket an insert may scan for a free slot
/// before giving up and resizing. A failed scan within `ADD_RANGE`
/// means the table is effectively full in that region.
pub const ADD_RANGE: usize = 256;

/// Slots covered by one write-lock stripe.
const STRIPE: usize = 64;

/// Smallest home-bucket count a table is created with.
const MIN_CAP: usize = 64;

/// A key/value pair, heap-allocated once and immutable afterwards;
/// value updates swap the whole entry pointer, so readers never observe
/// a torn pair.
struct Entry<K, V> {
    key: K,
    value: V,
}

/// One immutable-shape table generation. The arrays never move or grow;
/// a resize builds a whole new `Table` and publishes it through
/// [`HopMap::table`].
struct Table<K, V> {
    /// Home-bucket count; a power of two.
    cap: usize,
    /// `cap - 1`, the home-bucket index mask.
    mask: u64,
    /// `cap + ADD_RANGE` physical slots. The overflow tail (instead of
    /// wraparound) keeps every neighborhood a contiguous, ascending slot
    /// interval — which is what makes the ordered-stripe lock protocol
    /// below deadlock-free.
    slots: Box<[Atomic<Entry<K, V>>]>,
    /// Per home bucket: bit `i` set ⇔ slot `home + i` holds an entry
    /// whose home is this bucket.
    hops: Box<[AtomicU32]>,
    /// Per home bucket: seqlock version. Odd ⇔ a displacement involving
    /// an entry of this bucket is in flight. Writers acquire it with a
    /// CAS (even → odd), so two displacers moving *different* entries of
    /// the same bucket serialize instead of interleaving their bumps.
    vers: Box<[AtomicU32]>,
    /// Write locks, one per [`STRIPE`] physical slots. All slot stores
    /// happen under the owning stripe's lock; stripes are only ever
    /// acquired in increasing index order.
    locks: Box<[Mutex<()>]>,
}

impl<K, V> Table<K, V> {
    fn new(cap: usize) -> Self {
        debug_assert!(cap.is_power_of_two());
        let slot_count = cap + ADD_RANGE;
        Table {
            cap,
            mask: (cap - 1) as u64,
            slots: (0..slot_count).map(|_| Atomic::null()).collect(),
            hops: (0..cap).map(|_| AtomicU32::new(0)).collect(),
            vers: (0..cap).map(|_| AtomicU32::new(0)).collect(),
            locks: (0..slot_count.div_ceil(STRIPE))
                .map(|_| Mutex::new(()))
                .collect(),
        }
    }
}

// A retired `Table`'s drop frees only its arrays: the `Atomic` slots
// have no drop glue (entry pointers were migrated into the successor
// table and are owned there), so sharing entry pointers across
// generations during a resize cannot double-free.

/// Spin budget before a seqlock waiter starts yielding its timeslice.
/// Spinning is right when the writer holding the odd version is running
/// on another core (the critical section is a handful of stores), but on
/// an oversubscribed host the writer may be preempted mid-section — a
/// pure spin then burns the waiter's whole quantum without ever letting
/// the writer finish. Past the budget, `yield_now` hands the CPU back.
const SPIN_LIMIT: u32 = 64;

/// One step of bounded spin-then-yield backoff; see [`SPIN_LIMIT`].
#[inline]
fn backoff(spins: &mut u32) {
    if *spins < SPIN_LIMIT {
        *spins += 1;
        std::hint::spin_loop();
    } else {
        std::thread::yield_now();
    }
}

/// Acquires bucket `v`'s seqlock for writing: spins until the version is
/// even and the CAS to odd succeeds. The critical section is a handful
/// of stores with no blocking inside, so contention resolves in nanoseconds.
fn lock_version(v: &AtomicU32) {
    let mut spins = 0;
    loop {
        let cur = v.load(Ordering::Relaxed);
        if cur & 1 == 0
            && v.compare_exchange_weak(cur, cur + 1, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
        {
            return;
        }
        backoff(&mut spins);
    }
}

/// Audit outcome of [`HopMap::audit`]: structural errors found (empty ⇔
/// valid) plus occupancy statistics.
#[derive(Debug)]
pub struct AuditReport {
    /// Human-readable descriptions of every invariant violation found.
    pub errors: Vec<String>,
    /// Entries present in the table.
    pub occupied: usize,
    /// Home-bucket count of the current table generation.
    pub capacity: usize,
    /// Largest observed distance from an entry's slot to its home bucket
    /// (the bounded-probe invariant requires `< HOP_RANGE`).
    pub max_probe: usize,
}

impl AuditReport {
    /// Whether the audit found no invariant violations.
    pub fn is_valid(&self) -> bool {
        self.errors.is_empty()
    }
}

/// A concurrent hopscotch-style hash map.
///
/// See the crate-level docs for the design and the safety argument.
/// `len` is a maintained counter (exact when the map is quiescent);
/// ordered scans ([`sorted_range`](Self::sorted_range)) are per-key
/// linearizable, **not** atomic snapshots — same scope as the suite's
/// skip list.
pub struct HopMap<K, V, S = FxBuildHasher> {
    table: Atomic<Table<K, V>>,
    hasher: S,
    len: AtomicUsize,
    resizes: AtomicUsize,
}

impl<K, V> HopMap<K, V, FxBuildHasher> {
    /// An empty map with the default (deterministic) hasher and the
    /// minimum capacity.
    pub fn new() -> Self {
        Self::with_capacity_and_hasher(MIN_CAP, FxBuildHasher)
    }

    /// An empty map sized for `cap` home buckets (rounded up to a power
    /// of two, at least the minimum capacity).
    pub fn with_capacity(cap: usize) -> Self {
        Self::with_capacity_and_hasher(cap, FxBuildHasher)
    }
}

impl<K, V> Default for HopMap<K, V, FxBuildHasher> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K, V, S: BuildHasher> HopMap<K, V, S> {
    /// An empty map with a caller-provided [`BuildHasher`] (tests use
    /// degenerate hashers to force same-neighborhood collisions).
    pub fn with_hasher(hasher: S) -> Self {
        Self::with_capacity_and_hasher(MIN_CAP, hasher)
    }

    /// An empty map with both an initial capacity and a hasher.
    pub fn with_capacity_and_hasher(cap: usize, hasher: S) -> Self {
        let cap = cap.next_power_of_two().max(MIN_CAP);
        HopMap {
            table: Atomic::new(Table::new(cap)),
            hasher,
            len: AtomicUsize::new(0),
            resizes: AtomicUsize::new(0),
        }
    }

    /// Number of keys present. Maintained as a counter: exact when the
    /// map is quiescent, momentarily off by in-flight operations
    /// otherwise.
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Relaxed)
    }

    /// Whether the map holds no keys (same caveats as [`len`](Self::len)).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Home-bucket count of the current table generation.
    pub fn capacity(&self) -> usize {
        // SAFETY: `table` is never null after construction and is loaded under `g`,
        // so the current generation stays allocated while we read `cap`.
        guard_cache::with_guard(|g| unsafe { self.table.load(Ordering::Acquire, g).deref().cap })
    }

    /// How many times the table has grown since construction.
    pub fn resizes(&self) -> usize {
        self.resizes.load(Ordering::Relaxed)
    }
}

impl<K, V, S> HopMap<K, V, S>
where
    K: Hash + Eq + Clone + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
    S: BuildHasher,
{
    fn hash_of(&self, k: &K) -> u64 {
        self.hasher.hash_one(k)
    }

    fn home(&self, k: &K, t: &Table<K, V>) -> usize {
        (self.hash_of(k) & t.mask) as usize
    }

    // ---------------------------------------------------------------
    // Point operations. The `*_in` flavors run under a caller-provided
    // epoch guard (the batch entry points and the workload adapters
    // amortize one pin over many calls); the plain flavors pin through
    // the shared `llxscx::guard_cache`, exactly like the trees.
    // ---------------------------------------------------------------

    /// [`get`](Self::get) under a caller-provided epoch guard.
    pub fn get_in(&self, k: &K, g: &Guard) -> Option<V> {
        // SAFETY: `table` is never null; loaded under `g`, the generation cannot be
        // freed before the guard drops.
        let t = unsafe { self.table.load(Ordering::Acquire, g).deref() };
        let h = self.home(k, t);
        let mut spins = 0;
        loop {
            let v1 = t.vers[h].load(Ordering::Acquire);
            if v1 & 1 == 1 {
                // A displacement involving this bucket is in flight.
                backoff(&mut spins);
                continue;
            }
            let mut hop = t.hops[h].load(Ordering::Acquire);
            while hop != 0 {
                let bit = hop.trailing_zeros() as usize;
                hop &= hop - 1;
                let e = t.slots[h + bit].load(Ordering::Acquire, g);
                // SAFETY: non-null slot entries are live: removal retires them through the
                // epoch, and `g` pins the current epoch.
                if let Some(er) = unsafe { e.as_ref() } {
                    if er.key == *k {
                        return Some(er.value.clone());
                    }
                }
            }
            // Miss. Only valid if no displacement raced us: a concurrent
            // displacement can make a *present* key invisible (bit for
            // the old slot cleared, bit for the new slot not yet seen).
            // Insert and remove never need this — they publish/retract a
            // key with a single hop-bit edit, which the snapshot above
            // either sees or doesn't (both orders linearizable).
            if t.vers[h].load(Ordering::Acquire) == v1 {
                return None;
            }
        }
    }

    /// Lock-free lookup. Linearizes at the hop-bitmap read (hit) or the
    /// version re-check (miss).
    pub fn get(&self, k: &K) -> Option<V> {
        guard_cache::with_guard(|g| self.get_in(k, g))
    }

    /// [`insert`](Self::insert) under a caller-provided epoch guard.
    pub fn insert_in(&self, k: K, v: V, g: &Guard) -> Option<V> {
        'restart: loop {
            let t_shared = self.table.load(Ordering::Acquire, g);
            // SAFETY: `table` is never null; the generation is alive under `g`.
            let t = unsafe { t_shared.deref() };
            let h = self.home(&k, t);
            // Lock the neighborhood's stripes (in increasing order), then
            // re-check the table pointer: a resize holds ALL stripes, so
            // an unchanged pointer under ≥ 1 held stripe means no resize
            // can complete until we release. Stripes acquired later in
            // this operation are strictly higher-indexed, which a blocked
            // resizer (parked on our lowest stripe, holding only lower
            // ones) can never contend — hence no deadlock and no further
            // pointer re-checks.
            let first_stripe = h / STRIPE;
            let mut last_stripe = (h + HOP_RANGE - 1) / STRIPE;
            let mut stripes: Vec<_> = (first_stripe..=last_stripe)
                .map(|i| t.locks[i].lock())
                .collect();
            if self.table.load(Ordering::Acquire, g) != t_shared {
                drop(stripes);
                continue 'restart;
            }
            // 1) Key already present in the neighborhood: replace the
            //    entry wholesale (readers see old or new, never a torn
            //    pair). The hop word is frozen while we hold the
            //    neighborhood's stripes — any writer that could edit one
            //    of its bits must hold the corresponding slot's stripe.
            let mut hop = t.hops[h].load(Ordering::Acquire);
            while hop != 0 {
                let bit = hop.trailing_zeros() as usize;
                hop &= hop - 1;
                let s = h + bit;
                let e = t.slots[s].load(Ordering::Acquire, g);
                // SAFETY: non-null slot entries are epoch-retired, hence alive under `g`.
                if let Some(er) = unsafe { e.as_ref() } {
                    if er.key == k {
                        let old = er.value.clone();
                        t.slots[s].store(Owned::new(Entry { key: k, value: v }), Ordering::Release);
                        // SAFETY: the store above unlinked `e` from its slot while holding the
                        // segment lock; no new reader can reach it, existing readers are pinned.
                        unsafe { g.defer_destroy(e) };
                        return Some(old);
                    }
                }
            }
            // 2) Find a free slot within ADD_RANGE of home, extending the
            //    held stripe run upward as the scan crosses boundaries.
            let mut free = None;
            for s in h..h + ADD_RANGE {
                while s / STRIPE > last_stripe {
                    last_stripe += 1;
                    stripes.push(t.locks[last_stripe].lock());
                }
                if t.slots[s].load(Ordering::Acquire, g).is_null() {
                    free = Some(s);
                    break;
                }
            }
            let Some(mut f) = free else {
                drop(stripes);
                self.grow(t_shared, g);
                continue 'restart;
            };
            // 3) Hopscotch: walk the free slot home-ward. Each step picks
            //    an entry below `f` that may legally rest at `f` (its own
            //    home is within HOP_RANGE of `f`) and moves it up,
            //    freeing its old slot. Both slots are under our stripes;
            //    the entry's home bucket `hb` may be outside them, but
            //    its hop word is only edited at bits owned by slots we
            //    hold (atomic RMWs keep other bits intact), and its
            //    seqlock serializes us against both readers and other
            //    displacers of that bucket.
            while f >= h + HOP_RANGE {
                let mut victim = None;
                for j in (f + 1 - HOP_RANGE)..f {
                    let cand = t.slots[j].load(Ordering::Acquire, g);
                    // SAFETY: candidate slot entry; non-null entries are alive under `g`.
                    let Some(cr) = (unsafe { cand.as_ref() }) else {
                        continue;
                    };
                    let hb = self.home(&cr.key, t);
                    debug_assert!(
                        hb <= j && j - hb < HOP_RANGE,
                        "entry out of its neighborhood"
                    );
                    if hb + HOP_RANGE <= f {
                        continue; // would land outside its neighborhood
                    }
                    victim = Some((j, cand, hb));
                    break;
                }
                let Some((j, cand, hb)) = victim else {
                    drop(stripes);
                    self.grow(t_shared, g);
                    continue 'restart;
                };
                lock_version(&t.vers[hb]);
                t.slots[f].store(cand, Ordering::Release);
                t.hops[hb].fetch_or(1 << (f - hb), Ordering::AcqRel);
                t.hops[hb].fetch_and(!(1u32 << (j - hb)), Ordering::AcqRel);
                t.slots[j].store(Shared::null(), Ordering::Release);
                t.vers[hb].fetch_add(1, Ordering::Release);
                f = j;
            }
            // 4) Publish: slot first, hop bit second. The fetch_or is the
            //    linearization point — before it the key is absent to
            //    every reader, after it present.
            t.slots[f].store(Owned::new(Entry { key: k, value: v }), Ordering::Release);
            t.hops[h].fetch_or(1 << (f - h), Ordering::AcqRel);
            self.len.fetch_add(1, Ordering::Relaxed);
            return None;
        }
    }

    /// Inserts, returning the displaced value.
    pub fn insert(&self, k: K, v: V) -> Option<V> {
        guard_cache::with_guard(|g| self.insert_in(k, v, g))
    }

    /// [`remove`](Self::remove) under a caller-provided epoch guard.
    pub fn remove_in(&self, k: &K, g: &Guard) -> Option<V> {
        loop {
            let t_shared = self.table.load(Ordering::Acquire, g);
            // SAFETY: `table` is never null; the generation is alive under `g`.
            let t = unsafe { t_shared.deref() };
            let h = self.home(k, t);
            let stripes: Vec<_> = (h / STRIPE..=(h + HOP_RANGE - 1) / STRIPE)
                .map(|i| t.locks[i].lock())
                .collect();
            if self.table.load(Ordering::Acquire, g) != t_shared {
                drop(stripes);
                continue;
            }
            let mut hop = t.hops[h].load(Ordering::Acquire);
            while hop != 0 {
                let bit = hop.trailing_zeros() as usize;
                hop &= hop - 1;
                let s = h + bit;
                let e = t.slots[s].load(Ordering::Acquire, g);
                // SAFETY: non-null slot entries are epoch-retired, hence alive under `g`.
                if let Some(er) = unsafe { e.as_ref() } {
                    if er.key == *k {
                        // Bit first (the linearization point: the key
                        // becomes invisible), then the slot. A reader
                        // holding the old bitmap that still probes the
                        // slot either finds the entry (linearizes before
                        // us) or a null (skips it).
                        t.hops[h].fetch_and(!(1u32 << bit), Ordering::AcqRel);
                        t.slots[s].store(Shared::null(), Ordering::Release);
                        let v = er.value.clone();
                        // SAFETY: the null store above unlinked `e` under the segment lock; readers
                        // still traversing hold guards, so destruction is epoch-deferred.
                        unsafe { g.defer_destroy(e) };
                        self.len.fetch_sub(1, Ordering::Relaxed);
                        return Some(v);
                    }
                }
            }
            return None;
        }
    }

    /// Removes, returning the removed value.
    pub fn remove(&self, k: &K) -> Option<V> {
        guard_cache::with_guard(|g| self.remove_in(k, g))
    }

    // ---------------------------------------------------------------
    // Batch entry points: one weighted guard-cache pin per REPIN_OPS
    // chunk, mirroring the chromatic tree's bulk paths (and keeping the
    // suite's documented reclamation-lag bound).
    // ---------------------------------------------------------------

    /// Inserts a whole batch, returning the displaced value per element
    /// in input order (duplicates resolve in batch order). Elements
    /// linearize individually; the batch is not atomic.
    pub fn insert_batch(&self, batch: &[(K, V)]) -> Vec<Option<V>> {
        let mut out = Vec::with_capacity(batch.len());
        for chunk in batch.chunks(guard_cache::REPIN_OPS as usize) {
            guard_cache::with_guard_weighted(chunk.len() as u32, |g| {
                out.extend(
                    chunk
                        .iter()
                        .map(|(k, v)| self.insert_in(k.clone(), v.clone(), g)),
                );
            });
        }
        out
    }

    /// Removes a batch of keys; semantics as [`insert_batch`](Self::insert_batch).
    pub fn remove_batch(&self, keys: &[K]) -> Vec<Option<V>> {
        let mut out = Vec::with_capacity(keys.len());
        for chunk in keys.chunks(guard_cache::REPIN_OPS as usize) {
            guard_cache::with_guard_weighted(chunk.len() as u32, |g| {
                out.extend(chunk.iter().map(|k| self.remove_in(k, g)));
            });
        }
        out
    }

    /// Looks up a batch of keys; semantics as [`insert_batch`](Self::insert_batch).
    pub fn get_batch(&self, keys: &[K]) -> Vec<Option<V>> {
        let mut out = Vec::with_capacity(keys.len());
        for chunk in keys.chunks(guard_cache::REPIN_OPS as usize) {
            guard_cache::with_guard_weighted(chunk.len() as u32, |g| {
                out.extend(chunk.iter().map(|k| self.get_in(k, g)));
            });
        }
        out
    }

    // ---------------------------------------------------------------
    // Ordered scans: a sorted drain, per-key linearizable.
    // ---------------------------------------------------------------

    /// Every entry whose key `keep` accepts, sorted by key.
    ///
    /// **Consistency scope:** per-key linearizable, like the suite's
    /// skip-list scans — each bucket is read as a seqlock-consistent
    /// snapshot (so a scan is sorted, duplicate-free, never shows a
    /// phantom and never misses a key that was present for the whole
    /// scan), but different buckets may reflect different instants.
    /// Callers needing an atomic snapshot use a tree.
    fn scan(&self, keep: impl Fn(&K) -> bool) -> Vec<(K, V)>
    where
        K: Ord,
    {
        guard_cache::with_guard(|g| {
            // SAFETY: `table` is never null; the generation is alive under `g`.
            let t = unsafe { self.table.load(Ordering::Acquire, g).deref() };
            let mut out = Vec::new();
            for h in 0..t.cap {
                let mut spins = 0;
                loop {
                    let v1 = t.vers[h].load(Ordering::Acquire);
                    if v1 & 1 == 1 {
                        backoff(&mut spins);
                        continue;
                    }
                    let start = out.len();
                    let mut hop = t.hops[h].load(Ordering::Acquire);
                    while hop != 0 {
                        let bit = hop.trailing_zeros() as usize;
                        hop &= hop - 1;
                        let e = t.slots[h + bit].load(Ordering::Acquire, g);
                        // SAFETY: non-null slot entries are epoch-retired, hence alive under `g`.
                        if let Some(er) = unsafe { e.as_ref() } {
                            // The home filter drops entries a *stale* hop
                            // bit points at: after remove-then-reinsert of
                            // the slot by another bucket's insert, the
                            // slot can hold a foreign entry — which its
                            // own bucket's pass will report instead.
                            if self.home(&er.key, t) == h && keep(&er.key) {
                                out.push((er.key.clone(), er.value.clone()));
                            }
                        }
                    }
                    if t.vers[h].load(Ordering::Acquire) == v1 {
                        break;
                    }
                    out.truncate(start); // displacement raced us: redo bucket
                }
            }
            out.sort_unstable_by(|a, b| a.0.cmp(&b.0));
            out
        })
    }

    /// Entries with keys in `[lo, hi]`, sorted by key. See
    /// [`sorted_items`](Self::sorted_items) for the consistency scope.
    pub fn sorted_range(&self, lo: &K, hi: &K) -> Vec<(K, V)>
    where
        K: Ord,
    {
        self.scan(|k| lo <= k && k <= hi)
    }

    /// All entries, sorted by key — a per-key-linearizable sorted drain
    /// (each per-bucket snapshot is consistent; buckets may reflect
    /// different instants).
    pub fn sorted_items(&self) -> Vec<(K, V)>
    where
        K: Ord,
    {
        self.scan(|_| true)
    }

    // ---------------------------------------------------------------
    // Resize.
    // ---------------------------------------------------------------

    /// Grows the table (called after a placement failure). Takes every
    /// stripe in increasing order — excluding all writers — then
    /// re-checks that `expected` is still current (a racing grow may
    /// have already replaced it). Entry *pointers* migrate into a table
    /// of twice the capacity; the old table is never modified (readers
    /// that loaded it mid-operation finish against a frozen, complete
    /// generation and linearize at their table load), then retired
    /// through the epoch — its drop frees only the arrays.
    fn grow(&self, expected: Shared<'_, Table<K, V>>, g: &Guard) {
        // SAFETY: `expected` is the table the caller just loaded under `g` and is
        // never null.
        let t = unsafe { expected.deref() };
        let _all: Vec<_> = t.locks.iter().map(|m| m.lock()).collect();
        if self.table.load(Ordering::Acquire, g) != expected {
            return; // someone else already grew this generation
        }
        let mut new_cap = t.cap << 1;
        loop {
            let new_t = Table::new(new_cap);
            let mut ok = true;
            for slot in t.slots.iter() {
                let e = slot.load(Ordering::Acquire, g);
                if e.is_null() {
                    continue;
                }
                if !self.place_unsynced(&new_t, e, g) {
                    ok = false;
                    break;
                }
            }
            if ok {
                // SEQCST: resize publish; totally ordered with every slot store it must precede.
                self.table.store(Owned::new(new_t), Ordering::SeqCst);
                // SAFETY: the store above replaced `expected` as the published table with
                // every segment lock held; its Drop frees only the arrays (entries were
                // transplanted), and pinned readers defer that free.
                unsafe { g.defer_destroy(expected) };
                self.resizes.fetch_add(1, Ordering::Relaxed);
                return;
            }
            // Pathological hash distribution: even 2x couldn't place an
            // entry within its neighborhood. Double again and rebuild.
            new_cap <<= 1;
        }
    }

    /// Sequential hopscotch placement into a table no other thread can
    /// see yet (resize migration): same displacement walk as
    /// [`insert_in`] without locks or version traffic. Returns false if
    /// the entry cannot be placed (caller doubles and retries).
    fn place_unsynced(&self, t: &Table<K, V>, e: Shared<'_, Entry<K, V>>, g: &Guard) -> bool {
        // SAFETY: `e` is the caller's freshly allocated, non-null entry.
        let h = self.home(&unsafe { e.deref() }.key, t);
        let mut free = None;
        for s in h..h + ADD_RANGE {
            if t.slots[s].load(Ordering::Relaxed, g).is_null() {
                free = Some(s);
                break;
            }
        }
        let Some(mut f) = free else { return false };
        while f >= h + HOP_RANGE {
            let mut victim = None;
            for j in (f + 1 - HOP_RANGE)..f {
                let cand = t.slots[j].load(Ordering::Relaxed, g);
                // SAFETY: resize path: every segment lock is held, entries cannot be freed.
                let Some(cr) = (unsafe { cand.as_ref() }) else {
                    continue;
                };
                let hb = self.home(&cr.key, t);
                if hb + HOP_RANGE <= f {
                    continue;
                }
                victim = Some((j, cand, hb));
                break;
            }
            let Some((j, cand, hb)) = victim else {
                return false;
            };
            t.slots[f].store(cand, Ordering::Relaxed);
            t.hops[hb].fetch_or(1 << (f - hb), Ordering::Relaxed);
            t.hops[hb].fetch_and(!(1u32 << (j - hb)), Ordering::Relaxed);
            t.slots[j].store(Shared::null(), Ordering::Relaxed);
            f = j;
        }
        t.slots[f].store(e, Ordering::Relaxed);
        t.hops[h].fetch_or(1 << (f - h), Ordering::Relaxed);
        true
    }

    // ---------------------------------------------------------------
    // Structural audit (for the stress tests).
    // ---------------------------------------------------------------

    /// Checks every structural invariant of the current table
    /// generation: bounded probes (every entry within `HOP_RANGE` of its
    /// home), exact hop-bitmap/slot agreement, no duplicate keys, and a
    /// `len` counter matching the occupancy. Only meaningful on a
    /// quiescent map (concurrent writers make the snapshot torn).
    pub fn audit(&self) -> AuditReport
    where
        K: Ord,
    {
        guard_cache::with_guard(|g| {
            // SAFETY: `table` is never null; the generation is alive under `g`.
            let t = unsafe { self.table.load(Ordering::Acquire, g).deref() };
            let mut errors = Vec::new();
            let mut occupied = 0usize;
            let mut max_probe = 0usize;
            let mut keys: Vec<&K> = Vec::new();
            for (s, slot) in t.slots.iter().enumerate() {
                let e = slot.load(Ordering::Acquire, g);
                // SAFETY: non-null slot entries are epoch-retired, hence alive under `g`.
                let Some(er) = (unsafe { e.as_ref() }) else {
                    continue;
                };
                occupied += 1;
                keys.push(&er.key);
                let hb = self.home(&er.key, t);
                if hb > s || s - hb >= HOP_RANGE {
                    errors.push(format!(
                        "slot {s}: entry outside its neighborhood (home {hb})"
                    ));
                    continue;
                }
                max_probe = max_probe.max(s - hb);
                if t.hops[hb].load(Ordering::Acquire) & (1 << (s - hb)) == 0 {
                    errors.push(format!("slot {s}: home {hb} hop bit not set"));
                }
            }
            for (h, hops) in t.hops.iter().enumerate() {
                let mut hop = hops.load(Ordering::Acquire);
                while hop != 0 {
                    let bit = hop.trailing_zeros() as usize;
                    hop &= hop - 1;
                    let e = t.slots[h + bit].load(Ordering::Acquire, g);
                    // SAFETY: hop-bit target slot; non-null entries are alive under `g`.
                    match unsafe { e.as_ref() } {
                        None => errors.push(format!("bucket {h}: bit {bit} points at empty slot")),
                        Some(er) if self.home(&er.key, t) != h => errors.push(format!(
                            "bucket {h}: bit {bit} points at foreign entry (home {})",
                            self.home(&er.key, t)
                        )),
                        Some(_) => {}
                    }
                }
            }
            keys.sort_unstable();
            for w in keys.windows(2) {
                if w[0] == w[1] {
                    errors.push("duplicate key present".to_string());
                }
            }
            if self.len() != occupied {
                errors.push(format!(
                    "len counter {} != occupancy {occupied}",
                    self.len()
                ));
            }
            AuditReport {
                errors,
                occupied,
                capacity: t.cap,
                max_probe,
            }
        })
    }
}

impl<K, V, S> Drop for HopMap<K, V, S> {
    fn drop(&mut self) {
        // SAFETY: `&mut self`: no other thread holds a reference, so the unprotected
        // guard is sound and the current generation owns every live entry.
        let g = unsafe { unprotected() };
        let t_shared = self.table.load(Ordering::Relaxed, g);
        // SAFETY: exclusive `&mut self` in Drop — no concurrent readers.
        if let Some(t) = unsafe { t_shared.as_ref() } {
            for slot in t.slots.iter() {
                let e = slot.load(Ordering::Relaxed, g);
                if !e.is_null() {
                    // SAFETY: each live entry is owned solely by this table generation.
                    drop(unsafe { e.into_owned() });
                }
            }
        }
        if !t_shared.is_null() {
            // SAFETY: the table itself is exclusively owned here.
            drop(unsafe { t_shared.into_owned() });
        }
    }
}
