//! Model-based oracle for the hopscotch map: random interleaved
//! point/batch scripts against `BTreeMap`, replayed at the load factors
//! the table is expected to sustain, plus adversarial same-neighborhood
//! key sets that force displacement chains and growth.

use hashmap::{HopMap, HOP_RANGE};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::hash::{BuildHasher, Hasher};

/// One scripted op: `(selector, key material, value material)`.
type Op = (u8, u64, u64);

/// Applies `script` to a [`HopMap`] prefilled to `prefill / cap` load
/// and to a `BTreeMap`, asserting identical results op for op, then
/// identical contents and a clean structural audit.
fn check_script(script: &[Op], cap: usize, prefill: u64) -> Result<(), TestCaseError> {
    let map: HopMap<u64, u64> = HopMap::with_capacity(cap);
    let mut model = BTreeMap::new();
    // Prefill to the target load factor with evenly spread keys.
    for k in 0..prefill {
        map.insert(k * 3, k);
        model.insert(k * 3, k);
    }
    // Ops hit a keyspace ~25% wider than the prefill, so the script
    // mixes hits, misses, overwrites and fresh inserts at that load.
    let keyspace = (prefill * 4).max(16);
    for &(sel, k_raw, v) in script {
        let k = k_raw % keyspace;
        match sel % 6 {
            0 | 1 => prop_assert_eq!(map.insert(k, v), model.insert(k, v)),
            2 => prop_assert_eq!(map.remove(&k), model.remove(&k)),
            3 => prop_assert_eq!(map.get(&k), model.get(&k).copied()),
            4 => {
                // Batch insert derived from the op's material, duplicate
                // keys included (they must resolve in input order).
                let batch: Vec<(u64, u64)> = (0..(v % 24))
                    .map(|i| ((k + i * i) % keyspace, v + i))
                    .collect();
                let expect: Vec<_> = batch.iter().map(|&(k, v)| model.insert(k, v)).collect();
                prop_assert_eq!(map.insert_batch(&batch), expect);
            }
            _ => {
                let keys: Vec<u64> = (0..(v % 24)).map(|i| (k + i * 7) % keyspace).collect();
                let expect: Vec<_> = keys.iter().map(|k| model.remove(k)).collect();
                prop_assert_eq!(map.remove_batch(&keys), expect);
            }
        }
    }
    let expect: Vec<(u64, u64)> = model.iter().map(|(k, v)| (*k, *v)).collect();
    prop_assert_eq!(map.sorted_items(), expect);
    prop_assert_eq!(map.len(), model.len());
    let report = map.audit();
    prop_assert!(report.is_valid(), "audit: {:?}", report.errors);
    prop_assert!(report.max_probe < HOP_RANGE, "probe bound exceeded");
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The load-factor sweep: the same random script replayed against a
    /// table at 0.5, 0.75 and 0.9 occupancy — the regimes where
    /// hopscotch displacement goes from rare to routine. (The vendored
    /// `proptest!` supports one binding, hence the tuple input.)
    #[test]
    fn scripts_match_btreemap_at_all_load_factors(
        input in (
            proptest::collection::vec((any::<u8>(), any::<u64>(), any::<u64>()), 1..120),
            any::<bool>(),
        )
    ) {
        let (script, _) = input;
        // cap 256 tables prefilled to 128 / 192 / 230 keys.
        check_script(&script, 256, 128)?; // load 0.50
        check_script(&script, 256, 192)?; // load 0.75
        check_script(&script, 256, 230)?; // load 0.90
    }
}

/// Identity hash: keys choose their own home bucket, so the test can
/// aim an arbitrary number of keys at one neighborhood.
#[derive(Clone, Copy, Default)]
struct IdentityBuild;
struct IdentityHasher(u64);
impl Hasher for IdentityHasher {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, _: &[u8]) {
        unreachable!("u64 keys hash via write_u64");
    }
    fn write_u64(&mut self, n: u64) {
        self.0 = n;
    }
}
impl BuildHasher for IdentityBuild {
    type Hasher = IdentityHasher;
    fn build_hasher(&self) -> IdentityHasher {
        IdentityHasher(0)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Adversarial same-neighborhood sets: every key is drawn from a few
    /// residue classes mod the initial capacity, so inserts pile into a
    /// handful of home buckets and *must* displace (and eventually grow)
    /// to make room. The model oracle and the audit run as above.
    #[test]
    fn same_neighborhood_keys_force_displacement_chains(
        input in (
            proptest::collection::vec((any::<bool>(), any::<u8>(), any::<u8>()), 1..150),
            any::<u8>(),
        )
    ) {
        let (script, base) = input;
        let map: HopMap<u64, u64, IdentityBuild> = HopMap::with_hasher(IdentityBuild);
        let cap = map.capacity() as u64;
        let mut model = BTreeMap::new();
        // Keys: residue (base-derived home, spread over 3 adjacent
        // buckets) + multiple*cap — all collide in the original table.
        for (i, &(is_insert, residue, mult)) in script.iter().enumerate() {
            let home = (base as u64 + (residue % 3) as u64) % cap;
            let k = home + (mult as u64 % 48) * cap;
            if is_insert {
                prop_assert_eq!(map.insert(k, i as u64), model.insert(k, i as u64));
            } else {
                prop_assert_eq!(map.remove(&k), model.remove(&k));
            }
        }
        let expect: Vec<(u64, u64)> = model.iter().map(|(k, v)| (*k, *v)).collect();
        prop_assert_eq!(map.sorted_items(), expect);
        let report = map.audit();
        prop_assert!(report.is_valid(), "audit: {:?}", report.errors);
        prop_assert!(report.max_probe < HOP_RANGE);
    }
}
