//! Concurrency battery for the hopscotch map's lock-free read path:
//! readers racing displacement chains, settled determinism under
//! striped writers, and scan weak properties mid-churn.

use hashmap::{HopMap, HOP_RANGE};
use std::hash::{BuildHasher, Hasher};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Identity hash so the test can aim keys at specific home buckets.
#[derive(Clone, Copy, Default)]
struct IdentityBuild;
struct IdentityHasher(u64);
impl Hasher for IdentityHasher {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, _: &[u8]) {
        unreachable!("u64 keys hash via write_u64");
    }
    fn write_u64(&mut self, n: u64) {
        self.0 = n;
    }
}
impl BuildHasher for IdentityBuild {
    type Hasher = IdentityHasher;
    fn build_hasher(&self) -> IdentityHasher {
        IdentityHasher(0)
    }
}

/// Readers must never miss a permanent key while churn threads force
/// displacement chains through the permanent keys' neighborhoods. This
/// is the seqlock's reason to exist: a displacement moves an entry
/// between two slots of its home neighborhood, and a reader scanning
/// between the two stores would otherwise report a false miss.
#[test]
fn readers_never_miss_permanent_keys_during_displacement_storm() {
    let map: Arc<HopMap<u64, u64, IdentityBuild>> =
        Arc::new(HopMap::with_capacity_and_hasher(1 << 14, IdentityBuild));
    let cap = map.capacity() as u64;
    // Permanent keys homed at buckets 0..24.
    for h in 0..24u64 {
        map.insert(h, h + 1);
    }
    let stop = Arc::new(AtomicBool::new(false));
    // Churn threads: keys congruent to the permanent homes mod cap, so
    // every insert lands in (and every remove vacates) the permanent
    // keys' neighborhoods, repeatedly displacing them. Each thread owns
    // a disjoint multiplier range: no same-key write races.
    let mut churners = Vec::new();
    for t in 0..2u64 {
        let map = Arc::clone(&map);
        let stop = Arc::clone(&stop);
        churners.push(std::thread::spawn(move || {
            let mut round = 0u64;
            while !stop.load(Ordering::Relaxed) {
                for h in 0..24 {
                    for m in (1 + t * 12)..(1 + t * 12 + 12) {
                        map.insert(h + m * cap, round);
                    }
                }
                for h in 0..24 {
                    for m in (1 + t * 12)..(1 + t * 12 + 12) {
                        if !(h + m + round).is_multiple_of(3) {
                            map.remove(&(h + m * cap));
                        }
                    }
                }
                round += 1;
            }
            llxscx::guard_cache::flush();
        }));
    }
    let mut readers = Vec::new();
    for _ in 0..2 {
        let map = Arc::clone(&map);
        let stop = Arc::clone(&stop);
        readers.push(std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                for h in 0..24u64 {
                    assert_eq!(
                        map.get(&h),
                        Some(h + 1),
                        "reader missed a permanent key mid-displacement"
                    );
                }
            }
        }));
    }
    std::thread::sleep(std::time::Duration::from_millis(400));
    stop.store(true, Ordering::Relaxed);
    for h in churners.into_iter().chain(readers) {
        h.join().unwrap();
    }
    let report = map.audit();
    assert!(report.is_valid(), "audit errors: {:?}", report.errors);
    assert!(report.max_probe < HOP_RANGE);
}

/// Striped point and batch writers over disjoint key ranges settle to
/// the deterministic per-stripe outcome, and `len` is exact once quiet.
#[test]
fn striped_point_and_batch_writers_settle_deterministically() {
    const STRIPE: u64 = 4_000;
    let map: Arc<HopMap<u64, u64>> = Arc::new(HopMap::new());
    let mut handles = Vec::new();
    for t in 0..4u64 {
        let map = Arc::clone(&map);
        handles.push(std::thread::spawn(move || {
            let base = t * STRIPE;
            if t % 2 == 0 {
                // Point-op stripes.
                for k in base..base + STRIPE {
                    map.insert(k, k + t);
                }
                for k in (base..base + STRIPE).filter(|k| k % 5 == 0) {
                    map.remove(&k);
                }
            } else {
                // Batch stripes: same outcome via the batch entry points.
                let items: Vec<(u64, u64)> = (base..base + STRIPE).map(|k| (k, k + t)).collect();
                map.insert_batch(&items);
                let dead: Vec<u64> = (base..base + STRIPE).filter(|k| k % 5 == 0).collect();
                map.remove_batch(&dead);
            }
            llxscx::guard_cache::flush();
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let expect: Vec<(u64, u64)> = (0..4 * STRIPE)
        .filter(|k| k % 5 != 0)
        .map(|k| (k, k + k / STRIPE))
        .collect();
    assert_eq!(map.sorted_items(), expect);
    assert_eq!(map.len(), expect.len());
    let report = map.audit();
    assert!(report.is_valid(), "audit errors: {:?}", report.errors);
}

/// Scans racing writers hold the documented per-key-linearizable weak
/// properties: strictly sorted (hence duplicate-free), no phantom keys
/// outside the live keyspace, and keys nobody ever deletes are present.
#[test]
fn scans_hold_weak_properties_mid_churn() {
    const KEYSPACE: u64 = 4_096;
    let map: Arc<HopMap<u64, u64>> = Arc::new(HopMap::new());
    // Even keys are permanent; odd keys churn.
    for k in (0..KEYSPACE).step_by(2) {
        map.insert(k, k);
    }
    let stop = Arc::new(AtomicBool::new(false));
    let mut churners = Vec::new();
    for t in 0..2u64 {
        let map = Arc::clone(&map);
        let stop = Arc::clone(&stop);
        churners.push(std::thread::spawn(move || {
            // Each thread owns half of the odd keys (disjoint by residue
            // mod 4), inserting and removing them in waves.
            let mine: Vec<u64> = (0..KEYSPACE).filter(|k| k % 4 == 2 * t + 1).collect();
            while !stop.load(Ordering::Relaxed) {
                for &k in &mine {
                    map.insert(k, k);
                }
                for &k in &mine {
                    map.remove(&k);
                }
            }
            llxscx::guard_cache::flush();
        }));
    }
    for _ in 0..60 {
        let got = map.sorted_range(&0, &(KEYSPACE - 1));
        for w in got.windows(2) {
            assert!(w[0].0 < w[1].0, "scan unsorted or duplicated a key");
        }
        for &(k, v) in &got {
            assert!(k < KEYSPACE, "phantom key {k} outside live keyspace");
            assert_eq!(v, k, "phantom value for key {k}");
        }
        let evens = got.iter().filter(|&&(k, _)| k % 2 == 0).count();
        assert_eq!(
            evens,
            (KEYSPACE / 2) as usize,
            "scan missed a permanent key"
        );
    }
    stop.store(true, Ordering::Relaxed);
    for h in churners {
        h.join().unwrap();
    }
    let report = map.audit();
    assert!(report.is_valid(), "audit errors: {:?}", report.errors);
}
