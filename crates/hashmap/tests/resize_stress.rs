//! Resize stress: multi-threaded churn that drives the table through
//! several growths while readers observe it, followed by a structural
//! audit. This is the binary CI runs under ThreadSanitizer — the
//! migration path (freeze → copy → publish) is exactly where a
//! data race would hide.

use hashmap::{HopMap, HOP_RANGE};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

const THREADS: u64 = 4;
const KEYS_PER_THREAD: u64 = 5_000;
/// Keys at or above this base are inserted before the churn starts and
/// never touched again; readers assert they stay visible throughout.
const PERMANENT_BASE: u64 = 1 << 40;
const PERMANENT_KEYS: u64 = 64;

/// The deterministic per-thread schedule: insert every key in the
/// stripe, remove every third, re-insert every sixth. Each key is owned
/// by exactly one thread, so the settled contents are computable.
fn churn(map: &HopMap<u64, u64>, stripe: u64) {
    let base = stripe * KEYS_PER_THREAD;
    for k in base..base + KEYS_PER_THREAD {
        map.insert(k, k.wrapping_mul(31));
    }
    for k in (base..base + KEYS_PER_THREAD).filter(|k| k % 3 == 0) {
        map.remove(&k);
    }
    for k in (base..base + KEYS_PER_THREAD).filter(|k| k % 6 == 0) {
        map.insert(k, k.wrapping_mul(37));
    }
    llxscx::guard_cache::flush();
}

/// Whether `k` survives [`churn`], and with which value.
fn settled_value(k: u64) -> Option<u64> {
    if k.is_multiple_of(6) {
        Some(k.wrapping_mul(37))
    } else if k.is_multiple_of(3) {
        None
    } else {
        Some(k.wrapping_mul(31))
    }
}

#[test]
fn concurrent_churn_across_growths_preserves_every_key() {
    // Start tiny: 20k live keys from capacity 64 forces many doublings.
    let map: Arc<HopMap<u64, u64>> = Arc::new(HopMap::with_capacity(64));
    for k in 0..PERMANENT_KEYS {
        map.insert(PERMANENT_BASE + k, k);
    }
    assert_eq!(map.resizes(), 0, "prefill alone must not resize cap 64");

    let stop = Arc::new(AtomicBool::new(false));
    let mut handles = Vec::new();
    for t in 0..THREADS {
        let map = Arc::clone(&map);
        handles.push(std::thread::spawn(move || churn(&map, t)));
    }
    // Reader threads: permanent keys must be visible through every
    // migration, and sorted drains must stay sorted and duplicate-free.
    let mut readers = Vec::new();
    for r in 0..2 {
        let map = Arc::clone(&map);
        let stop = Arc::clone(&stop);
        readers.push(std::thread::spawn(move || {
            let mut scans = 0u32;
            while !stop.load(Ordering::Relaxed) {
                for k in 0..PERMANENT_KEYS {
                    assert_eq!(
                        map.get(&(PERMANENT_BASE + k)),
                        Some(k),
                        "permanent key lost mid-resize"
                    );
                }
                if r == 0 {
                    let items = map.sorted_items();
                    for w in items.windows(2) {
                        assert!(w[0].0 < w[1].0, "scan unsorted or duplicated a key");
                    }
                    scans += 1;
                }
            }
            scans
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    for r in readers {
        assert!(r.join().is_ok());
    }

    // Settled: the table went through at least two growths...
    assert!(
        map.resizes() >= 2,
        "expected >=2 growths from cap 64, saw {}",
        map.resizes()
    );
    // ...every owned key matches the deterministic schedule...
    let mut expect: Vec<(u64, u64)> = (0..THREADS * KEYS_PER_THREAD)
        .filter_map(|k| settled_value(k).map(|v| (k, v)))
        .collect();
    expect.extend((0..PERMANENT_KEYS).map(|k| (PERMANENT_BASE + k, k)));
    expect.sort_unstable();
    assert_eq!(map.sorted_items(), expect, "lost or duplicated keys");
    assert_eq!(map.len(), expect.len(), "len counter drifted");
    // ...and the structure is intact: hop bits consistent, probe
    // distances within the neighborhood bound.
    let report = map.audit();
    assert!(report.is_valid(), "audit errors: {:?}", report.errors);
    assert!(
        report.max_probe < HOP_RANGE,
        "neighborhood bound exceeded: {}",
        report.max_probe
    );
    assert_eq!(report.occupied, expect.len());
}
